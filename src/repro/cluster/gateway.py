"""Asyncio cluster gateway: routing, batching, shedding, canaries.

``ClusterService`` is the front door of the horizontal serving cluster.
It owns an asyncio event loop on a background thread, a fleet of shard
worker processes (spawn context, each running
:func:`repro.cluster.shard.shard_main` over the shared memmapped
:class:`~repro.cluster.store.ModelStore`), and a routing table mapping
model *names* to registry version keys. Callers use plain synchronous
``predict`` / ``predict_many`` from any thread; internally each call is

1. **routed** — the name's route picks stable or canary version via a
   fractional-weight accumulator (weight 0 never canaries, weight 1
   always does, 0.25 canaries exactly every 4th call);
2. **admitted** — if the owning shard already has more than
   ``max_queue_rows`` rows in flight the request is refused *loudly*
   with :class:`~repro.errors.ShedError` (never silently dropped);
3. **batched** — a per-shard sender task coalesces adjacent same-key
   requests into one wire frame up to ``max_batch_rows`` rows;
4. **bounded** — the caller waits at most its deadline; expiry raises
   :class:`~repro.errors.DeadlineError` and is counted per shard and
   per version.

A shard that dies (crash, ``shard:kill`` chaos fault, OOM-kill…) is
detected by its connection closing: every in-flight request on it fails
immediately with :class:`~repro.errors.ShardCrashError`, and the
gateway respawns the worker — which re-opens the store (remapping the
same shared pages) and reloads its keys — up to ``max_respawns`` times.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.metrics import ClusterMetrics, format_cluster_report
from repro.cluster.protocol import read_frame_async, write_frame_async
from repro.cluster.shard import shard_main
from repro.cluster.store import export_model_store
from repro.errors import (
    DeadlineError,
    ServingError,
    ShardCrashError,
    ShedError,
)
from repro.faults import FaultPlan, shard_faults
from repro.serving.engine import BatchConfig, CacheConfig
from repro.serving.requests import PredictionResult

__all__ = ["ClusterConfig", "ClusterService"]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of a :class:`ClusterService`.

    Parameters
    ----------
    n_shards:
        Worker processes to spawn. Models are assigned to shards by
        fewest-keys-first, so distinct names spread across the fleet.
    replication:
        Replica count R per ``name@vN`` key: each key is loaded on R
        shards against the shared store (still one physical copy via
        the memmap). Reads route to the primary (first) replica and
        fail over to the next on :class:`ShardCrashError` or an
        expired attempt budget, so a killed or hung primary no longer
        makes its keys unavailable for the respawn window. Clamped to
        ``n_shards``.
    max_queue_rows:
        Admission-control bound: a shard with this many rows already in
        flight sheds new requests with :class:`ShedError`.
    max_batch_rows:
        Micro-batching bound: the per-shard sender coalesces adjacent
        same-key requests into one frame up to this many rows.
    default_deadline_s:
        Deadline applied when a request does not carry its own; every
        request in the cluster has one — a hung shard can delay an
        answer, never swallow it.
    max_respawns:
        Dead-shard respawn budget per shard; once exhausted the shard
        stays down and its requests fail fast with
        :class:`ShardCrashError`.
    start_timeout_s:
        How long to wait for a freshly spawned shard's ready handshake.
    batch, cache:
        Per-shard :class:`PredictionEngine` configuration.
    """

    n_shards: int = 2
    replication: int = 1
    max_queue_rows: int = 4096
    max_batch_rows: int = 512
    default_deadline_s: float = 30.0
    max_respawns: int = 3
    start_timeout_s: float = 120.0
    batch: BatchConfig = field(default_factory=BatchConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)

    def __post_init__(self) -> None:
        """Validate the configuration."""
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.max_queue_rows < 1:
            raise ValueError(
                f"max_queue_rows must be >= 1, got {self.max_queue_rows}"
            )
        if self.max_batch_rows < 1:
            raise ValueError(
                f"max_batch_rows must be >= 1, got {self.max_batch_rows}"
            )
        if self.default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be > 0, "
                f"got {self.default_deadline_s}"
            )
        if self.max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )


def _parse_specs(specs: Sequence) -> List[Dict]:
    """Normalize yield specifications into wire-friendly dicts."""
    from repro.applications.yield_estimation import Specification

    parsed = []
    for spec in specs:
        if isinstance(spec, str):
            spec = Specification.parse(spec)
        if isinstance(spec, Specification):
            spec = {
                "metric": spec.metric,
                "bound": float(spec.bound),
                "kind": spec.kind,
            }
        else:
            spec = {
                "metric": str(spec["metric"]),
                "bound": float(spec["bound"]),
                "kind": str(spec.get("kind", "max")),
            }
        parsed.append(spec)
    if not parsed:
        raise ValueError("at least one specification is required")
    return parsed


def _validate_predict(x, states) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce and shape-check one predict batch (gateway and listener)."""
    x = np.ascontiguousarray(np.asarray(x, dtype=float))
    states = np.ascontiguousarray(np.asarray(states, dtype=np.int64))
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if states.shape != (x.shape[0],):
        raise ValueError(
            f"got {x.shape[0]} rows but {states.shape} states"
        )
    return x, states


@dataclass
class _Route:
    """Routing-table entry for one model name."""

    stable: str
    canary: Optional[str] = None
    weight: float = 0.0
    acc: float = 0.0

    def choose(self) -> str:
        """Pick stable or canary via the fractional accumulator."""
        if self.canary is None or self.weight <= 0.0:
            return self.stable
        self.acc += self.weight
        if self.acc >= 1.0 - 1e-12:
            self.acc -= 1.0
            return self.canary
        return self.stable


@dataclass
class _PredictItem:
    """One routed request queued for a shard's sender task.

    ``expiry`` is a ``time.monotonic()`` instant on *this* process's
    clock; the wire never carries it — the sender task converts it to a
    relative remaining budget at frame-write time, so a wall-clock step
    (NTP, manual reset) between gateway and shard can neither expire
    nor immortalize an in-flight request.
    """

    id: int
    key: str
    x: np.ndarray
    states: np.ndarray
    expiry: float
    future: asyncio.Future = None

    @property
    def n(self) -> int:
        """Row count of the request."""
        return int(self.x.shape[0])


@dataclass
class _ControlItem:
    """A raw control frame queued for a shard's sender task.

    When ``expiry`` is set (a local ``time.monotonic()`` instant), the
    sender attaches the remaining relative budget to the header as
    ``"budget"`` at write time.
    """

    header: Dict
    arrays: Tuple = ()
    expiry: Optional[float] = None


class _ShardHandle:
    """The gateway's bookkeeping for one shard worker."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.sock: Optional[socket.socket] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.queue: Optional[asyncio.Queue] = None
        self.carry = None
        self.tasks: List[asyncio.Task] = []
        self.pending: Dict[int, _PredictItem] = {}
        self.pending_rows = 0
        self.respawns = 0
        self.alive = False
        self.dead_forever = False
        self.store_pss_bytes: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pid = self.process.pid if self.process is not None else None
        return (
            f"_ShardHandle({self.index}, pid={pid}, alive={self.alive}, "
            f"pending={len(self.pending)})"
        )


class ClusterService:
    """Horizontally scaled prediction service over shard processes.

    Synchronous façade over an asyncio gateway loop: all public methods
    are callable from any thread and block until their answer (or
    structured failure) arrives. Use as a context manager, or call
    :meth:`start` / :meth:`stop` explicitly.

    Parameters
    ----------
    registry:
        The :class:`~repro.serving.registry.ModelRegistry` whose
        entries are served.
    keys:
        Initial ``name@vN`` keys to export into the store and load.
    config:
        A :class:`ClusterConfig`; defaults apply when omitted.
    store_dir:
        Directory of the shared-memory store (exported on demand);
        defaults to ``<registry root>/shm_store``.
    """

    def __init__(
        self,
        registry,
        keys: Sequence[str] = (),
        config: Optional[ClusterConfig] = None,
        store_dir=None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else ClusterConfig()
        self.store_dir = str(
            store_dir
            if store_dir is not None
            else registry.root / "shm_store"
        )
        self.metrics = ClusterMetrics()
        self._initial_keys = [registry.entry(key).key for key in keys]
        self._routes: Dict[str, _Route] = {}
        # key -> primary shard index, and key -> full replica list
        # (primary first). _key_shard stays the single-owner view so
        # canary placement and reporting keep their PR-6 semantics.
        self._key_shard: Dict[str, int] = {}
        self._key_replicas: Dict[str, List[int]] = {}
        self._shards: List[_ShardHandle] = []
        self._ids = itertools.count(1)
        self._route_lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._stopping = False
        self._mp = multiprocessing.get_context("spawn")

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Export the store, spawn every shard, wait for readiness."""
        if self._started:
            raise ServingError("cluster already started")
        export_model_store(
            self.registry, self._initial_keys, self.store_dir
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-cluster-gateway",
            daemon=True,
        )
        self._thread.start()
        self._shards = [
            _ShardHandle(index)
            for index in range(self.config.n_shards)
        ]
        for key in self._initial_keys:
            self._assign(key)
        try:
            self._run(self._start_all_shards())
        except BaseException:
            self.stop()
            raise
        self._started = True
        for key in self._initial_keys:
            name = key.split("@", 1)[0]
            self._routes.setdefault(name, _Route(stable=key))

    def stop(self) -> None:
        """Shut every shard down and stop the gateway loop."""
        if self._loop is None:
            return
        self._stopping = True
        try:
            self._run(self._stop_all_shards())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            self._loop.close()
            self._loop = None
            self._thread = None
            self._started = False
            self._stopping = False

    def __enter__(self) -> "ClusterService":
        """Start the cluster on context entry."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Stop the cluster on context exit."""
        self.stop()

    # -- routing / versions ---------------------------------------------
    def load(self, key: str) -> str:
        """Export + load ``key`` onto its replicas; route its name to it.

        Returns the resolved ``name@vN`` key. If the name already has a
        route, the stable version is switched to the new key (a plain
        hot swap — use :meth:`set_canary` for a weighted rollout).
        """
        self._require_started()
        return self._run(self._load_async(key))

    async def _load_async(self, key: str) -> str:
        key = self.registry.entry(key).key
        await self._load_key_async(key)
        name = key.split("@", 1)[0]
        route = self._routes.get(name)
        if route is None:
            self._routes[name] = _Route(stable=key)
        else:
            route.stable = key
        return key

    def set_canary(self, name: str, canary_key: str, weight: float) -> str:
        """Start a weighted canary split for ``name``.

        ``weight`` is the canary's traffic fraction in [0, 1]; the
        fractional accumulator makes the edges exact (0 → never,
        1 → always). The canary version is exported and loaded onto the
        same replica set as the stable version so both report their own
        per-version metrics from identical placement.
        """
        self._require_started()
        return self._run(
            self._set_canary_async(name, canary_key, weight)
        )

    async def _set_canary_async(
        self, name: str, canary_key: str, weight: float
    ) -> str:
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {weight}")
        route = self._route(name)
        canary_key = self.registry.entry(canary_key).key
        if canary_key.split("@", 1)[0] != name:
            raise ServingError(
                f"canary {canary_key!r} is not a version of {name!r}"
            )
        await self._load_key_async(
            canary_key, replicas=self._key_replicas[route.stable]
        )
        route.canary = canary_key
        route.weight = float(weight)
        route.acc = 0.0
        return canary_key

    def promote(self, name: str) -> str:
        """Make the canary the stable version (full cutover)."""
        route = self._route(name)
        if route.canary is None:
            raise ServingError(f"{name!r} has no canary to promote")
        route.stable, route.canary, route.weight = route.canary, None, 0.0
        return route.stable

    def clear_canary(self, name: str) -> None:
        """Drop the canary split; all traffic returns to stable."""
        route = self._route(name)
        route.canary, route.weight, route.acc = None, 0.0, 0.0

    def describe_routes(self) -> Dict[str, Dict]:
        """Routing-table digest per name.

        ``shard`` is the stable version's primary; ``replicas`` its
        full owner list (primary first). ``n_variables`` — when the
        registry manifest records it — lets remote clients size request
        vectors without a local model copy.
        """
        digest = {}
        for name, route in sorted(self._routes.items()):
            try:
                manifest = self.registry.entry(route.stable).manifest
            except Exception:  # registry pruned underneath us
                manifest = {}
            digest[name] = {
                "stable": route.stable,
                "canary": route.canary,
                "weight": route.weight,
                "shard": self._key_shard.get(route.stable),
                "replicas": list(
                    self._key_replicas.get(route.stable, ())
                ),
                "n_variables": (
                    manifest.get("basis", {}).get("n_variables")
                    if isinstance(manifest.get("basis"), dict)
                    else None
                ),
            }
        return digest

    # -- serving --------------------------------------------------------
    def predict(
        self,
        name: str,
        x: np.ndarray,
        state: int,
        deadline_s: Optional[float] = None,
    ) -> PredictionResult:
        """Predict one design point; blocks until answer or failure."""
        return self.predict_many(
            name, np.asarray(x, dtype=float)[None, :], [state],
            deadline_s=deadline_s,
        )[0]

    def predict_many(
        self,
        name: str,
        x: np.ndarray,
        states: Sequence[int],
        deadline_s: Optional[float] = None,
    ) -> List[PredictionResult]:
        """Predict a batch of rows through the cluster.

        Routes the whole call to one version (stable or canary), ships
        it to the primary replica, and waits at most the deadline;
        a crashed or expired attempt fails over to the next replica
        while budget remains. Raises :class:`ShedError` (queue full),
        :class:`DeadlineError` (expired), or :class:`ShardCrashError`
        (every replica died with the request in flight) — never hangs,
        never silently drops.
        """
        self._require_started()
        x, states = _validate_predict(x, states)
        if x.shape[0] == 0:
            return []
        deadline_s = self._resolve_deadline(deadline_s)
        return self._run(
            self._predict_async(name, x, states, deadline_s)
        )

    def _resolve_deadline(self, deadline_s: Optional[float]) -> float:
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        return float(deadline_s)

    async def _predict_async(
        self,
        name: str,
        x: np.ndarray,
        states: np.ndarray,
        deadline_s: float,
    ) -> List[PredictionResult]:
        """Loop-side predict: route, submit with failover, record."""
        key = self._choose_version(name)
        started = time.perf_counter()
        results, served_by = await self._submit(
            key, x, states, time.monotonic() + deadline_s
        )
        self.metrics.record_batch(
            served_by, key, x.shape[0],
            time.perf_counter() - started,
        )
        return results

    def yield_report(
        self,
        name: str,
        specs: Sequence,
        n_samples: int = 400,
        seed: int = 0,
        confidence: float = 0.95,
        states: Optional[Sequence[int]] = None,
        deadline_s: Optional[float] = None,
    ) -> Dict:
        """Fleet yield/moment report for ``name``, computed in its shard.

        The owning shard samples every state of the routed version from
        the shared memmapped store, applies correlation-shared shrinkage
        (see :mod:`repro.yields`), and answers per-state yields with
        confidence intervals inside a single reply frame. ``specs``
        accepts :class:`~repro.applications.yield_estimation.Specification`
        objects, ``{"metric", "bound", "kind"}`` dicts, or
        ``"metric<=bound"`` strings. ``states`` restricts the *returned*
        per-state arrays (shrinkage always uses the full fleet).

        Returns a dict with the served ``key``/``version``, the shard's
        measured ``peak_bytes`` during the computation (the proof that
        no MK × MK covariance was densified), and the ``report`` payload
        of :func:`repro.yields.report_to_dict`. Raises the same error
        taxonomy as :meth:`predict_many` — a killed shard surfaces as
        :class:`ShardCrashError`, an expired wait as
        :class:`DeadlineError`.
        """
        self._require_started()
        return self._run(
            self._yield_async(
                name, specs, n_samples, seed, confidence, states,
                self._resolve_deadline(deadline_s),
            )
        )

    async def _yield_async(
        self,
        name: str,
        specs: Sequence,
        n_samples: int,
        seed: int,
        confidence: float,
        states: Optional[Sequence[int]],
        deadline_s: float,
    ) -> Dict:
        """Loop-side yield report: parse specs, submit with failover."""
        parsed = _parse_specs(specs)
        key = self._choose_version(name)
        reply = await self._submit_yield(
            key,
            parsed,
            int(n_samples),
            int(seed),
            float(confidence),
            time.monotonic() + deadline_s,
        )
        if states is not None:
            index = [int(s) for s in states]
            report = reply["report"]
            for field_name in (
                "yield_raw",
                "yield_shrunk",
                "yield_ci_lower",
                "yield_ci_upper",
            ):
                report[field_name] = [report[field_name][k] for k in index]
            report["states"] = index
        return reply

    # -- observability --------------------------------------------------
    def shard_engine_snapshots(self) -> List[Dict]:
        """Per-shard engine/metrics digests fetched over the wire.

        One entry per *live* shard (sorted by index), each carrying the
        worker's ``ServingMetrics`` snapshot, cache size, pid and store
        PSS numbers. Dead shards are skipped.
        """
        self._require_started()
        return self._run(self._collect_metrics())

    def report(self) -> str:
        """Full cluster text report (shards, versions, routes, engines)."""
        self._require_started()
        return self._run(self._report_async())

    async def _report_async(self) -> str:
        snapshots = await self._collect_metrics()
        return format_cluster_report(
            self.metrics.snapshot(),
            engine_snapshots=[s["engine"] for s in snapshots],
            routes=self.describe_routes(),
        )

    # -- chaos ----------------------------------------------------------
    def inject_faults(self, plan: Optional[FaultPlan]) -> Dict[int, str]:
        """Apply a fault plan's ``shard:kill`` / ``shard:hang`` specs.

        Sends each named shard its fault frame (through the ordinary
        sender queue, after anything already enqueued). Returns the
        ``{shard_index: mode}`` map actually applied; indices outside
        the fleet are ignored.
        """
        self._require_started()
        applied: Dict[int, str] = {}
        for index, mode in shard_faults(plan).items():
            if 0 <= index < len(self._shards):
                self._run(self._enqueue_control(index, {"kind": mode}))
                applied[index] = mode
        return applied

    # -- internals: sync→loop bridge ------------------------------------
    def _run(self, coro):
        """Run a coroutine on the gateway loop from any thread."""
        if self._loop is None:
            raise ServingError("cluster is not running")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def _require_started(self) -> None:
        if not self._started:
            raise ServingError(
                "cluster is not started; use it as a context manager or "
                "call start()"
            )

    def _route(self, name: str) -> _Route:
        route = self._routes.get(name)
        if route is None:
            raise ServingError(
                f"no model named {name!r} is loaded; known: "
                f"{sorted(self._routes)}"
            )
        return route

    def _choose_version(self, name: str) -> str:
        with self._route_lock:
            return self._route(name).choose()

    def _assign(
        self,
        key: str,
        shard: Optional[int] = None,
        replicas: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Pick (or confirm) the replica set owning ``key``.

        Returns the owner list, primary first. New keys take the R
        least-loaded shards (fewest keys first, permanently-dead shards
        avoided while any alternative exists); ``replicas`` pins the
        placement outright (canary co-placement with its stable
        version), ``shard`` pins only the primary.
        """
        if key in self._key_replicas:
            return self._key_replicas[key]
        n = len(self._shards)
        if replicas is not None:
            owners = [int(i) for i in replicas]
        else:
            r = min(self.config.replication, n)
            counts = [0] * n
            for existing in self._key_replicas.values():
                for owner in existing:
                    counts[owner] += 1
            usable = [
                i for i in range(n) if not self._shards[i].dead_forever
            ] or list(range(n))
            order = sorted(usable, key=lambda i: (counts[i], i))
            if shard is not None:
                order = [shard] + [i for i in order if i != shard]
            owners = order[:r]
        self._key_shard[key] = owners[0]
        self._key_replicas[key] = owners
        return owners

    async def _load_key_async(
        self,
        key: str,
        shard: Optional[int] = None,
        replicas: Optional[Sequence[int]] = None,
    ) -> None:
        """Export ``key`` to the store and install it on every replica.

        Replicas currently mid-respawn are skipped — the fresh worker
        re-reads its key list (which already includes ``key``) during
        the handshake. Raises :class:`ShardCrashError` when no replica
        can ever serve the key again.
        """
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, export_model_store, self.registry, [key], self.store_dir
        )
        owners = self._assign(key, shard=shard, replicas=replicas)
        alive = [i for i in owners if self._shards[i].alive]
        if not alive and all(
            self._shards[i].dead_forever for i in owners
        ):
            raise ShardCrashError(
                f"every replica of {key!r} ({owners}) has exhausted its "
                "respawn budget"
            )
        for index in alive:
            reply = await self._control_roundtrip(
                index, {"kind": "load", "key": key}
            )
            if reply.get("kind") != "loaded":
                raise ServingError(
                    f"shard {index} failed to load {key!r}: "
                    f"{reply.get('error', reply)}"
                )

    def _load_key(
        self, key: str, replicas: Optional[Sequence[int]] = None
    ) -> None:
        self._run(self._load_key_async(key, replicas=replicas))

    # -- internals: shard lifecycle (loop thread) -----------------------
    async def _start_all_shards(self) -> None:
        await asyncio.gather(
            *(self._spawn_shard(handle) for handle in self._shards)
        )

    async def _stop_all_shards(self) -> None:
        for handle in self._shards:
            for task in handle.tasks:
                task.cancel()
            if handle.writer is not None:
                try:
                    # A hung shard never drains its socket; don't let a
                    # polite shutdown frame block the whole stop.
                    await asyncio.wait_for(
                        write_frame_async(
                            handle.writer, {"kind": "shutdown"}
                        ),
                        timeout=1.0,
                    )
                    handle.writer.close()
                except (
                    asyncio.TimeoutError,
                    ConnectionError,
                    OSError,
                    RuntimeError,
                ):
                    pass
            handle.alive = False
        loop = asyncio.get_running_loop()
        for handle in self._shards:
            process = handle.process
            if process is None or not process.is_alive():
                continue
            await loop.run_in_executor(None, process.join, 2.0)
            if process.is_alive():
                # terminate() alone leaves a zombie: SIGTERM may be
                # ignored by a hung worker, and an unjoined child is
                # never reaped. Escalate terminate→join→kill→join so
                # stop() always leaves zero alive children behind.
                process.terminate()
                await loop.run_in_executor(None, process.join, 2.0)
            if process.is_alive():
                process.kill()
                await loop.run_in_executor(None, process.join, 2.0)

    def _shard_keys(self, index: int) -> List[str]:
        return sorted(
            key for key, owners in self._key_replicas.items()
            if index in owners
        )

    async def _spawn_shard(self, handle: _ShardHandle) -> None:
        """Spawn (or respawn) one worker and wait for its handshake."""
        parent, child = socket.socketpair()
        process = self._mp.Process(
            target=shard_main,
            args=(
                child,
                self.store_dir,
                self._shard_keys(handle.index),
                handle.index,
                self.config.batch,
                self.config.cache,
            ),
            daemon=True,
            name=f"repro-shard-{handle.index}",
        )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, process.start)
        child.close()
        reader, writer = await asyncio.open_connection(sock=parent)
        try:
            ready, _ = await asyncio.wait_for(
                read_frame_async(reader),
                timeout=self.config.start_timeout_s,
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError) as error:
            writer.close()
            process.terminate()
            raise ShardCrashError(
                f"shard {handle.index} never came up: "
                f"{type(error).__name__}"
            ) from error
        if ready.get("kind") != "ready":  # pragma: no cover - defensive
            raise ShardCrashError(
                f"shard {handle.index} sent {ready.get('kind')!r} "
                "instead of the ready handshake"
            )
        handle.process = process
        handle.sock = parent
        handle.reader = reader
        handle.writer = writer
        # One queue per handle, reused across respawns: requests that
        # arrive while the shard is being respawned sit here and are
        # served by the new worker instead of orphaning until deadline.
        if handle.queue is None:
            handle.queue = asyncio.Queue()
        handle.carry = None
        handle.store_pss_bytes = ready.get("store_pss_bytes")
        handle.alive = True
        handle.tasks = [
            asyncio.ensure_future(self._reader_task(handle)),
            asyncio.ensure_future(self._sender_task(handle)),
        ]

    async def _on_shard_death(self, handle: _ShardHandle) -> None:
        """Fail the shard's in-flight requests; respawn if budget allows."""
        if not handle.alive:
            return
        handle.alive = False
        for task in handle.tasks:
            if task is not asyncio.current_task():
                task.cancel()
        if handle.writer is not None:
            try:
                handle.writer.close()
            except (OSError, RuntimeError):  # pragma: no cover
                pass
        pid = (
            handle.process.pid if handle.process is not None else None
        )
        crashed = list(handle.pending.values())
        if handle.carry is not None and isinstance(
            handle.carry, _PredictItem
        ):
            crashed.append(handle.carry)
        handle.carry = None
        while handle.queue is not None and not handle.queue.empty():
            item = handle.queue.get_nowait()
            if isinstance(item, _PredictItem):
                crashed.append(item)
        handle.pending.clear()
        handle.pending_rows = 0
        for item in crashed:
            self.metrics.record_crash_failures(
                handle.index, item.n, key=item.key
            )
            if not item.future.done():
                item.future.set_exception(
                    ShardCrashError(
                        f"shard {handle.index} (pid {pid}) died with "
                        f"request {item.id} in flight"
                    )
                )
        if self._stopping:
            return
        if handle.respawns >= self.config.max_respawns:
            handle.dead_forever = True
            return
        handle.respawns += 1
        self.metrics.record_respawn(handle.index)
        try:
            await self._spawn_shard(handle)
        except Exception:
            handle.dead_forever = True
            raise

    # -- internals: per-shard tasks (loop thread) -----------------------
    async def _reader_task(self, handle: _ShardHandle) -> None:
        """Dispatch answer frames to their waiting futures."""
        try:
            while True:
                header, arrays = await read_frame_async(handle.reader)
                item = handle.pending.pop(header.get("id"), None)
                if item is None:
                    continue  # deadline-abandoned or unknown
                handle.pending_rows -= getattr(item, "n", 0) or 0
                if item.future.done():
                    continue
                kind = header.get("kind")
                if kind == "result":
                    values, cached = arrays[:-1], arrays[-1]
                    metrics = header["metrics"]
                    version = int(header["version"])
                    item.future.set_result([
                        PredictionResult(
                            values={
                                metric: float(values[m][row])
                                for m, metric in enumerate(metrics)
                            },
                            cached=bool(cached[row]),
                            version=version,
                        )
                        for row in range(item.n)
                    ])
                elif kind == "error":
                    etype = header.get("etype")
                    message = header.get("error", "shard error")
                    if etype == "deadline":
                        self.metrics.record_deadline_expired(
                            handle.index, item.key, item.n
                        )
                        item.future.set_exception(DeadlineError(message))
                    else:
                        item.future.set_exception(ServingError(message))
                else:
                    item.future.set_result(header)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            try:
                await self._on_shard_death(handle)
            except Exception:
                pass  # respawn failed; dead_forever is already set
        except asyncio.CancelledError:
            raise

    async def _sender_task(self, handle: _ShardHandle) -> None:
        """Single writer: coalesce same-key predicts, ship frames."""
        try:
            while True:
                if handle.carry is not None:
                    item, handle.carry = handle.carry, None
                else:
                    item = await handle.queue.get()
                if isinstance(item, _ControlItem):
                    header = item.header
                    if item.expiry is not None:
                        # Relative budget attached at write time: the
                        # shard re-anchors it on its own monotonic
                        # clock, so wall-clock steps can't expire it.
                        header = dict(
                            header,
                            budget=max(
                                item.expiry - time.monotonic(), 0.0
                            ),
                        )
                    await write_frame_async(
                        handle.writer, header, item.arrays
                    )
                    continue
                batch = [item]
                rows = item.n
                while rows < self.config.max_batch_rows:
                    try:
                        nxt = handle.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if (
                        isinstance(nxt, _PredictItem)
                        and nxt.key == item.key
                    ):
                        batch.append(nxt)
                        rows += nxt.n
                    else:
                        handle.carry = nxt
                        break
                live = [b for b in batch if not b.future.done()]
                if not live:
                    continue
                now = time.monotonic()
                await write_frame_async(
                    handle.writer,
                    {
                        "kind": "predict",
                        "key": item.key,
                        "reqs": [
                            {
                                "id": b.id,
                                "n": b.n,
                                "budget": max(b.expiry - now, 0.0),
                            }
                            for b in live
                        ],
                    },
                    [
                        np.concatenate([b.x for b in live], axis=0),
                        np.concatenate([b.states for b in live]),
                    ],
                )
        except (ConnectionError, OSError):
            try:
                await self._on_shard_death(handle)
            except Exception:
                pass  # respawn failed; dead_forever is already set
        except asyncio.CancelledError:
            raise

    # -- internals: request submission (loop thread) --------------------
    def _candidates(self, key: str) -> List[_ShardHandle]:
        """Replica handles to try for ``key``, in failover order.

        Live replicas first (primary leading), then replicas currently
        mid-respawn (their persistent queue survives the respawn, so
        queueing there is better than failing when nothing is live).
        Permanently-dead shards never appear.
        """
        handles = [
            self._shards[index] for index in self._key_replicas[key]
        ]
        live = [h for h in handles if h.alive and not h.dead_forever]
        respawning = [
            h for h in handles if not h.alive and not h.dead_forever
        ]
        return live + respawning

    async def _submit(
        self,
        key: str,
        x: np.ndarray,
        states: np.ndarray,
        expiry: float,
    ) -> Tuple[List[PredictionResult], int]:
        """Submit one batch with replica failover; returns (results,
        serving shard index).

        Each attempt gets an equal slice of the remaining monotonic
        budget (the final attempt gets all of it), so a hung primary
        burns only its slice before the request moves to a replica. A
        :class:`ShardCrashError` fails over immediately; a
        :class:`DeadlineError` fails over while overall budget remains.
        """
        n = int(x.shape[0])
        candidates = self._candidates(key)
        if not candidates:
            raise ShardCrashError(
                f"every replica of {key!r} "
                f"({self._key_replicas[key]}) exhausted its respawn "
                f"budget ({self.config.max_respawns}); unservable"
            )
        for attempt, handle in enumerate(candidates):
            remaining = expiry - time.monotonic()
            attempts_left = len(candidates) - attempt
            attempt_expiry = (
                expiry
                if attempts_left == 1
                else time.monotonic() + remaining / attempts_left
            )
            try:
                results = await self._attempt_predict(
                    handle, key, x, states, attempt_expiry
                )
                return results, handle.index
            except (ShardCrashError, DeadlineError):
                if attempts_left == 1 or expiry - time.monotonic() <= 0:
                    raise
                self.metrics.record_failover(
                    handle.index, candidates[attempt + 1].index, key, n
                )
        raise AssertionError("unreachable")  # pragma: no cover

    async def _attempt_predict(
        self,
        handle: _ShardHandle,
        key: str,
        x: np.ndarray,
        states: np.ndarray,
        expiry: float,
    ) -> List[PredictionResult]:
        """One replica attempt: admission, enqueue, bounded wait."""
        n = int(x.shape[0])
        if handle.pending_rows + n > self.config.max_queue_rows:
            self.metrics.record_shed(handle.index, key, n)
            raise ShedError(
                f"shard {handle.index} queue is full "
                f"({handle.pending_rows} rows in flight, bound "
                f"{self.config.max_queue_rows}); request of {n} rows shed"
            )
        item = _PredictItem(
            id=next(self._ids),
            key=key,
            x=x,
            states=states,
            expiry=expiry,
            future=asyncio.get_event_loop().create_future(),
        )
        handle.pending[item.id] = item
        handle.pending_rows += n
        await handle.queue.put(item)
        timeout = expiry - time.monotonic()
        try:
            return await asyncio.wait_for(item.future, timeout=timeout)
        except asyncio.TimeoutError:
            if handle.pending.pop(item.id, None) is not None:
                handle.pending_rows -= n
            self.metrics.record_deadline_expired(handle.index, key, n)
            raise DeadlineError(
                f"request {item.id} ({n} rows on shard {handle.index}) "
                f"expired after {max(timeout, 0.0):.3f}s"
            ) from None

    async def _submit_yield(
        self,
        key: str,
        specs: List[Dict],
        n_samples: int,
        seed: int,
        confidence: float,
        expiry: float,
    ) -> Dict:
        """Ship one yield frame with replica failover; await the report.

        Registered in ``handle.pending`` like a predict so a worker
        death while the report is computing fails the attempt with
        :class:`ShardCrashError` — which moves it to the next replica
        instead of erroring out.
        """
        candidates = self._candidates(key)
        if not candidates:
            raise ShardCrashError(
                f"every replica of {key!r} "
                f"({self._key_replicas[key]}) exhausted its respawn "
                f"budget ({self.config.max_respawns}); unservable"
            )
        for attempt, handle in enumerate(candidates):
            remaining = expiry - time.monotonic()
            attempts_left = len(candidates) - attempt
            attempt_expiry = (
                expiry
                if attempts_left == 1
                else time.monotonic() + remaining / attempts_left
            )
            try:
                reply = await self._attempt_yield(
                    handle, key, specs, n_samples, seed, confidence,
                    attempt_expiry,
                )
            except (ShardCrashError, DeadlineError):
                if attempts_left == 1 or expiry - time.monotonic() <= 0:
                    raise
                self.metrics.record_failover(
                    handle.index, candidates[attempt + 1].index, key, 1
                )
                continue
            if (
                isinstance(reply, dict)
                and reply.get("kind") == "yield-result"
            ):
                return reply
            raise ServingError(f"unexpected yield reply {reply!r}")
        raise AssertionError("unreachable")  # pragma: no cover

    async def _attempt_yield(
        self,
        handle: _ShardHandle,
        key: str,
        specs: List[Dict],
        n_samples: int,
        seed: int,
        confidence: float,
        expiry: float,
    ) -> Dict:
        item = _PredictItem(
            id=next(self._ids),
            key=key,
            x=np.empty((0, 1)),
            states=np.empty(0, dtype=np.int64),
            expiry=expiry,
            future=asyncio.get_event_loop().create_future(),
        )
        header = {
            "kind": "yield",
            "id": item.id,
            "key": key,
            "specs": specs,
            "n_samples": n_samples,
            "seed": seed,
            "confidence": confidence,
        }
        handle.pending[item.id] = item
        await handle.queue.put(_ControlItem(header=header, expiry=expiry))
        timeout = expiry - time.monotonic()
        try:
            return await asyncio.wait_for(item.future, timeout=timeout)
        except asyncio.TimeoutError:
            handle.pending.pop(item.id, None)
            self.metrics.record_deadline_expired(handle.index, key, 1)
            raise DeadlineError(
                f"yield request {item.id} on shard {handle.index} "
                f"expired after {max(timeout, 0.0):.3f}s"
            ) from None

    async def _enqueue_control(self, index: int, header: Dict) -> None:
        handle = self._shards[index]
        if handle.queue is None:
            raise ShardCrashError(f"shard {index} is down")
        await handle.queue.put(_ControlItem(header=header))

    async def _control_roundtrip(
        self, index: int, header: Dict
    ) -> Dict:
        """Send a control frame expecting a reply; wait for it."""
        handle = self._shards[index]
        if not handle.alive:
            raise ShardCrashError(f"shard {index} is down")
        item = _PredictItem(
            id=next(self._ids),
            key=header.get("key", ""),
            x=np.empty((0, 1)),
            states=np.empty(0, dtype=np.int64),
            expiry=time.monotonic() + self.config.start_timeout_s,
            future=asyncio.get_event_loop().create_future(),
        )
        header = dict(header, id=item.id)
        handle.pending[item.id] = item
        await handle.queue.put(_ControlItem(header=header))
        try:
            reply = await asyncio.wait_for(
                item.future, timeout=self.config.start_timeout_s
            )
        except asyncio.TimeoutError:
            handle.pending.pop(item.id, None)
            raise DeadlineError(
                f"shard {index} did not answer a "
                f"{header.get('kind')!r} frame within "
                f"{self.config.start_timeout_s}s"
            ) from None
        if isinstance(reply, dict):
            return reply
        raise ServingError(  # pragma: no cover - defensive
            f"unexpected control reply {reply!r}"
        )

    async def _collect_metrics(self) -> List[Dict]:
        replies = await asyncio.gather(
            *(
                self._control_roundtrip(handle.index, {"kind": "metrics"})
                for handle in self._shards
                if handle.alive
            ),
            return_exceptions=True,
        )
        return sorted(
            (r for r in replies if isinstance(r, dict)),
            key=lambda r: r.get("shard", 0),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterService(shards={len(self._shards)}, "
            f"routes={sorted(self._routes)}, started={self._started})"
        )
