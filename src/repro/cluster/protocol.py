"""Length-prefixed wire protocol between the gateway and shard workers.

One frame carries a small JSON header plus zero or more raw ndarray
payloads, so a request batch crosses the gateway↔shard boundary as::

    u32 header_len | u64 payload_len | header JSON | raw array bytes…

The header's ``"arrays"`` entry records each payload array's shape and
dtype; the receiver reconstructs views with ``np.frombuffer`` over one
contiguous receive buffer — no per-row serialization, no pickling, and
(on the send side) ``sendall`` over memoryviews of the original arrays,
so a float64 request batch is never copied into an intermediate bytes
object. Both a blocking-socket API (shard workers) and an asyncio
stream API (the gateway) are provided over the same format.

Frame kinds are a gateway/shard contract, not enforced here — the
header is an arbitrary JSON-serializable dict. ``MAX_FRAME_BYTES``
bounds a frame so a corrupt length prefix fails fast instead of
attempting a multi-gigabyte allocation.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ServingError

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "read_frame",
    "read_frame_async",
    "send_frame",
    "write_frame_async",
]

_PREFIX = struct.Struct("<IQ")

#: Upper bound on one frame (header + payload); a corrupt prefix is
#: detected instead of honoured.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(ServingError):
    """A malformed or oversized frame arrived on a cluster connection."""


def _encode_header(
    header: Dict, arrays: Sequence[np.ndarray]
) -> Tuple[bytes, List[np.ndarray]]:
    """Serialize the header, recording array shapes/dtypes alongside."""
    prepared: List[np.ndarray] = []
    specs = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        prepared.append(array)
        specs.append(
            {"shape": list(array.shape), "dtype": str(array.dtype)}
        )
    payload = dict(header)
    payload["arrays"] = specs
    return json.dumps(payload, sort_keys=True).encode("utf-8"), prepared


def _decode_payload(
    header: Dict, payload: memoryview
) -> List[np.ndarray]:
    """Rebuild the payload arrays as zero-copy views over the buffer."""
    arrays: List[np.ndarray] = []
    offset = 0
    for spec in header.get("arrays", ()):
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(n) for n in spec["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if offset + nbytes > len(payload):
            raise ProtocolError(
                f"frame payload too short: header promises {nbytes} "
                f"bytes at offset {offset}, buffer has {len(payload)}"
            )
        arrays.append(
            np.frombuffer(
                payload[offset:offset + nbytes], dtype=dtype
            ).reshape(shape)
        )
        offset += nbytes
    return arrays


def _check_lengths(header_len: int, payload_len: int) -> None:
    if header_len + payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {header_len + payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound (corrupt length prefix?)"
        )


# ----------------------------------------------------------------------
# Blocking-socket API (shard worker side).
# ----------------------------------------------------------------------
def send_frame(
    sock: socket.socket,
    header: Dict,
    arrays: Sequence[np.ndarray] = (),
) -> None:
    """Write one frame to a blocking socket.

    The arrays go out as memoryviews of their (contiguous) originals —
    ``sendall`` streams them without building a joined bytes object.
    """
    header_bytes, prepared = _encode_header(header, arrays)
    payload_len = sum(a.nbytes for a in prepared)
    _check_lengths(len(header_bytes), payload_len)
    sock.sendall(_PREFIX.pack(len(header_bytes), payload_len))
    sock.sendall(header_bytes)
    for array in prepared:
        sock.sendall(memoryview(array).cast("B"))


def _recv_exactly(sock: socket.socket, n: int) -> memoryview:
    """Read exactly ``n`` bytes (EOFError on a closed peer)."""
    buffer = bytearray(n)
    view = memoryview(buffer)
    got = 0
    while got < n:
        count = sock.recv_into(view[got:])
        if count == 0:
            raise EOFError("peer closed the cluster connection")
        got += count
    return view

def read_frame(
    sock: socket.socket,
) -> Tuple[Dict, List[np.ndarray]]:
    """Read one frame from a blocking socket: ``(header, arrays)``.

    Raises ``EOFError`` when the peer has closed the connection at a
    frame boundary (the clean-shutdown signal) or mid-frame.
    """
    header_len, payload_len = _PREFIX.unpack(
        _recv_exactly(sock, _PREFIX.size)
    )
    _check_lengths(header_len, payload_len)
    header = json.loads(bytes(_recv_exactly(sock, header_len)))
    payload = (
        _recv_exactly(sock, payload_len) if payload_len else memoryview(b"")
    )
    return header, _decode_payload(header, payload)


# ----------------------------------------------------------------------
# Asyncio stream API (gateway side).
# ----------------------------------------------------------------------
async def write_frame_async(
    writer: asyncio.StreamWriter,
    header: Dict,
    arrays: Sequence[np.ndarray] = (),
) -> None:
    """Write one frame to an asyncio stream and drain it."""
    header_bytes, prepared = _encode_header(header, arrays)
    payload_len = sum(a.nbytes for a in prepared)
    _check_lengths(len(header_bytes), payload_len)
    writer.write(_PREFIX.pack(len(header_bytes), payload_len))
    writer.write(header_bytes)
    for array in prepared:
        writer.write(memoryview(array).cast("B"))
    await writer.drain()


async def read_frame_async(
    reader: asyncio.StreamReader,
) -> Tuple[Dict, List[np.ndarray]]:
    """Read one frame from an asyncio stream: ``(header, arrays)``.

    Raises ``asyncio.IncompleteReadError`` when the peer closes — the
    gateway treats that as the shard dying.
    """
    prefix = await reader.readexactly(_PREFIX.size)
    header_len, payload_len = _PREFIX.unpack(prefix)
    _check_lengths(header_len, payload_len)
    header = json.loads(await reader.readexactly(header_len))
    payload = (
        memoryview(await reader.readexactly(payload_len))
        if payload_len
        else memoryview(b"")
    )
    return header, _decode_payload(header, payload)
