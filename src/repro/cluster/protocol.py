"""Length-prefixed wire protocol between the gateway and shard workers.

One frame carries a small JSON header plus zero or more raw ndarray
payloads, so a request batch crosses the gateway↔shard boundary as::

    u32 header_len | u64 payload_len | header JSON | raw array bytes…

The header's ``"arrays"`` entry records each payload array's shape and
dtype; the receiver reconstructs views with ``np.frombuffer`` over one
contiguous receive buffer — no per-row serialization, no pickling, and
(on the send side) ``sendall`` over memoryviews of the original arrays,
so a float64 request batch is never copied into an intermediate bytes
object. Both a blocking-socket API (shard workers) and an asyncio
stream API (the gateway) are provided over the same format.

Frame kinds are a gateway/shard contract, not enforced here — the
header is an arbitrary JSON-serializable dict. ``MAX_FRAME_BYTES``
bounds a frame so a corrupt length prefix fails fast instead of
attempting a multi-gigabyte allocation.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ServingError

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "read_frame",
    "read_frame_async",
    "send_frame",
    "write_frame_async",
]

_PREFIX = struct.Struct("<IQ")

#: Upper bound on one frame (header + payload); a corrupt prefix is
#: detected instead of honoured.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(ServingError):
    """A malformed or oversized frame arrived on a cluster connection."""


def _encode_header(
    header: Dict, arrays: Sequence[np.ndarray]
) -> Tuple[bytes, List[np.ndarray]]:
    """Serialize the header, recording array shapes/dtypes alongside."""
    prepared: List[np.ndarray] = []
    specs = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        prepared.append(array)
        specs.append(
            {"shape": list(array.shape), "dtype": str(array.dtype)}
        )
    payload = dict(header)
    payload["arrays"] = specs
    return json.dumps(payload, sort_keys=True).encode("utf-8"), prepared


def _decode_payload(
    header: Dict, payload: memoryview
) -> List[np.ndarray]:
    """Rebuild the payload arrays as zero-copy views over the buffer.

    Hardened against untrusted peers: the header is data off the wire,
    so every shape/dtype entry is validated before it touches an
    allocation. Negative or non-integer shape entries, unknown dtypes,
    element counts whose byte size exceeds ``MAX_FRAME_BYTES``, short
    payloads, and trailing payload bytes the header does not account
    for all raise :class:`ProtocolError` instead of producing a
    garbage view (a negative entry would make ``nbytes`` negative and
    turn the bounds check vacuous) or being silently ignored.
    """
    specs = header.get("arrays", ())
    if not isinstance(specs, (list, tuple)):
        raise ProtocolError(
            f"frame header 'arrays' must be a list, got "
            f"{type(specs).__name__}"
        )
    arrays: List[np.ndarray] = []
    offset = 0
    for spec in specs:
        if not isinstance(spec, dict):
            raise ProtocolError(
                f"frame array spec must be a dict, got "
                f"{type(spec).__name__}"
            )
        try:
            dtype = np.dtype(spec["dtype"])
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                f"frame array spec has a bad dtype: {error}"
            ) from None
        raw_shape = spec.get("shape")
        if not isinstance(raw_shape, (list, tuple)):
            raise ProtocolError(
                f"frame array spec has a bad shape: {raw_shape!r}"
            )
        shape: List[int] = []
        count = 1
        for entry in raw_shape:
            if isinstance(entry, bool) or not isinstance(entry, int):
                raise ProtocolError(
                    f"frame array shape entry {entry!r} is not an integer"
                )
            if entry < 0:
                raise ProtocolError(
                    f"frame array shape entry {entry} is negative"
                )
            shape.append(entry)
            count *= entry
            if count * dtype.itemsize > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame array of shape {raw_shape} ({dtype}) exceeds "
                    f"the {MAX_FRAME_BYTES}-byte bound"
                )
        nbytes = dtype.itemsize * count
        if offset + nbytes > len(payload):
            raise ProtocolError(
                f"frame payload too short: header promises {nbytes} "
                f"bytes at offset {offset}, buffer has {len(payload)}"
            )
        arrays.append(
            np.frombuffer(
                payload[offset:offset + nbytes], dtype=dtype
            ).reshape(tuple(shape))
        )
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(
            f"frame payload has {len(payload) - offset} trailing bytes "
            f"the header does not account for"
        )
    return arrays


def _check_lengths(header_len: int, payload_len: int) -> None:
    if header_len + payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {header_len + payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound (corrupt length prefix?)"
        )


def _decode_header(raw: bytes) -> Dict:
    """Parse the header JSON; malformed bytes are a protocol error."""
    try:
        header = json.loads(raw)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(
            f"frame header is not valid JSON: {error}"
        ) from None
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got "
            f"{type(header).__name__}"
        )
    return header


# ----------------------------------------------------------------------
# Blocking-socket API (shard worker side).
# ----------------------------------------------------------------------
def send_frame(
    sock: socket.socket,
    header: Dict,
    arrays: Sequence[np.ndarray] = (),
) -> None:
    """Write one frame to a blocking socket.

    The arrays go out as memoryviews of their (contiguous) originals —
    ``sendall`` streams them without building a joined bytes object.
    """
    header_bytes, prepared = _encode_header(header, arrays)
    payload_len = sum(a.nbytes for a in prepared)
    _check_lengths(len(header_bytes), payload_len)
    sock.sendall(_PREFIX.pack(len(header_bytes), payload_len))
    sock.sendall(header_bytes)
    for array in prepared:
        if array.nbytes:  # empty views refuse the byte cast
            sock.sendall(memoryview(array).cast("B"))


def _recv_exactly(sock: socket.socket, n: int) -> memoryview:
    """Read exactly ``n`` bytes (EOFError on a closed peer)."""
    buffer = bytearray(n)
    view = memoryview(buffer)
    got = 0
    while got < n:
        count = sock.recv_into(view[got:])
        if count == 0:
            raise EOFError("peer closed the cluster connection")
        got += count
    return view

def read_frame(
    sock: socket.socket,
) -> Tuple[Dict, List[np.ndarray]]:
    """Read one frame from a blocking socket: ``(header, arrays)``.

    Raises ``EOFError`` when the peer has closed the connection at a
    frame boundary (the clean-shutdown signal) or mid-frame.
    """
    header_len, payload_len = _PREFIX.unpack(
        _recv_exactly(sock, _PREFIX.size)
    )
    _check_lengths(header_len, payload_len)
    header = _decode_header(bytes(_recv_exactly(sock, header_len)))
    payload = (
        _recv_exactly(sock, payload_len) if payload_len else memoryview(b"")
    )
    return header, _decode_payload(header, payload)


# ----------------------------------------------------------------------
# Asyncio stream API (gateway side).
# ----------------------------------------------------------------------
async def write_frame_async(
    writer: asyncio.StreamWriter,
    header: Dict,
    arrays: Sequence[np.ndarray] = (),
) -> None:
    """Write one frame to an asyncio stream and drain it."""
    header_bytes, prepared = _encode_header(header, arrays)
    payload_len = sum(a.nbytes for a in prepared)
    _check_lengths(len(header_bytes), payload_len)
    writer.write(_PREFIX.pack(len(header_bytes), payload_len))
    writer.write(header_bytes)
    for array in prepared:
        if array.nbytes:  # empty views refuse the byte cast
            writer.write(memoryview(array).cast("B"))
    await writer.drain()


async def read_frame_async(
    reader: asyncio.StreamReader,
) -> Tuple[Dict, List[np.ndarray]]:
    """Read one frame from an asyncio stream: ``(header, arrays)``.

    Raises ``asyncio.IncompleteReadError`` when the peer closes — the
    gateway treats that as the shard dying.
    """
    prefix = await reader.readexactly(_PREFIX.size)
    header_len, payload_len = _PREFIX.unpack(prefix)
    _check_lengths(header_len, payload_len)
    header = _decode_header(await reader.readexactly(header_len))
    payload = (
        memoryview(await reader.readexactly(payload_len))
        if payload_len
        else memoryview(b"")
    )
    return header, _decode_payload(header, payload)
