"""Shared-memory model store: registry artifacts as memmappable blocks.

A registry entry is a compressed ``.npz`` per metric — convenient on
disk, but N shard processes each ``load()``-ing it hold N private,
decompressed copies of every coefficient matrix. The store flattens
entries into raw little-endian float64 block files::

    <store>/
      store_manifest.json        # blocks, shapes, sha256, basis specs
      lna@v1/
        nf_db.coef.bin           # (K, M) float64, C order
        nf_db.offsets.bin        # (K,) float64
        gain_db.coef.bin
        ...

Every shard then maps the *same* page-cache copy read-only with
``numpy.memmap`` — the OS shares the physical pages, so a fleet of
workers costs one model footprint plus per-process interpreter
overhead. :func:`export_model_store` is the write path (idempotent:
versions are immutable, so an already-exported key is skipped);
:class:`ModelStore` is the read path, verifying each block's sha256 on
open so a corrupted or truncated block raises
:class:`~repro.errors.CheckpointError` naming the file instead of
serving garbage coefficients.

Sharing is asserted, not assumed: :func:`process_pss_bytes` reads the
kernel's PSS (proportional set size — shared pages divided by their
mapper count) so the cluster benchmark can measure that 4 shards
mapping one store cost ~1× its size, not 4×.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.basis import basis_from_spec
from repro.core.frozen import FrozenModel
from repro.errors import CheckpointError, ServingError
from repro.serving.engine import ServedModel
from repro.serving.registry import ModelRegistry

__all__ = [
    "STORE_MANIFEST_NAME",
    "ModelStore",
    "export_model_store",
    "mapped_pss_bytes",
    "process_pss_bytes",
]

STORE_MANIFEST_NAME = "store_manifest.json"
_STORE_SCHEMA = 1


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def process_pss_bytes() -> Optional[int]:
    """This process's PSS in bytes (``None`` where unsupported).

    PSS — proportional set size — charges each shared page 1/N to each
    of its N mappers, so summing shard PSS deltas measures the *unique*
    memory a fleet holds. Plain RSS double-counts shared pages and
    would make a perfectly-shared store look N× larger.
    """
    try:
        with open("/proc/self/smaps_rollup") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def mapped_pss_bytes(directory) -> Optional[int]:
    """This process's PSS over mappings of files under ``directory``.

    Walks ``/proc/self/smaps`` and sums the ``Pss:`` field of every
    mapping whose backing path lives under ``directory`` — i.e. the
    *current* proportional charge of the store's memmapped blocks to
    this process, with shared pages already divided among their
    mappers. Unlike a whole-process PSS delta taken at startup, this is
    correct at any time: once N shards map the store, each reports
    ~1/N of it. Returns ``None`` where smaps is unsupported, ``0`` when
    nothing under ``directory`` is mapped.
    """
    prefix = str(Path(directory).resolve())
    total = 0
    matching = False
    try:
        with open("/proc/self/smaps") as handle:
            for line in handle:
                fields = line.split()
                if fields and "-" in fields[0]:  # mapping header line
                    path = fields[-1] if len(fields) >= 6 else ""
                    matching = path.startswith(prefix)
                elif matching and line.startswith("Pss:"):
                    total += int(fields[1]) * 1024
    except OSError:
        return None
    return total


def _write_block(path: Path, array: np.ndarray) -> Dict:
    """Write one raw float64 block; returns its manifest record."""
    data = np.ascontiguousarray(np.asarray(array, dtype="<f8"))
    with open(path, "wb") as handle:
        handle.write(memoryview(data).cast("B"))
    return {
        "shape": [int(n) for n in data.shape],
        "dtype": "<f8",
        "sha256": _sha256_file(path),
        "nbytes": int(data.nbytes),
    }


def export_model_store(
    registry: ModelRegistry,
    keys: Sequence[str],
    directory,
) -> dict:
    """Export registry entries into the flat memmappable store layout.

    Each ``name@vN`` key resolves through the registry (checksum-
    verified), its frozen models' coefficient and offset arrays land as
    raw ``.bin`` blocks under ``<directory>/<name>@vN/``, and the store
    manifest records every block's shape and sha256 plus the entry's
    basis spec and metric list. Registry versions are immutable, so a
    key that is already in the manifest is skipped — re-exporting is
    cheap and idempotent, which is what lets the gateway extend a live
    store when a canary version arrives. The manifest is replaced
    atomically (write-temp + rename) so a crashed export never leaves a
    half-readable store. Returns the updated manifest dict.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / STORE_MANIFEST_NAME
    if manifest_path.exists():
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    else:
        manifest = {"schema": _STORE_SCHEMA, "entries": {}}
    entries = manifest["entries"]
    changed = False
    for key in keys:
        entry, models, basis = registry.load_models(key)
        if entry.key in entries:
            continue
        subdir = directory / entry.key
        subdir.mkdir(parents=True, exist_ok=True)
        blocks: Dict[str, Dict] = {}
        for metric, frozen in sorted(models.items()):
            arrays = [
                ("coef", frozen.coef_),
                ("offsets", frozen.offsets_.reshape(1, -1)),
            ]
            if frozen.correlation_ is not None:
                arrays.append(("correlation", frozen.correlation_))
            for suffix, array in arrays:
                filename = f"{metric}.{suffix}.bin"
                blocks[f"{entry.key}/{filename}"] = _write_block(
                    subdir / filename, array
                )
        entries[entry.key] = {
            "name": entry.name,
            "version": int(entry.version),
            "metrics": sorted(models),
            "basis": None if basis is None else basis.spec(),
            "n_states": int(entry.manifest.get("n_states", 0)),
            "blocks": blocks,
        }
        changed = True
    if changed or not manifest_path.exists():
        temp = manifest_path.with_suffix(".tmp")
        with open(temp, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp, manifest_path)
    return manifest


class ModelStore:
    """Read-only view of an exported store: one memmap per block.

    Opening verifies the manifest's sha256 per block (reading each file
    once — the same pages the memmaps will serve, so verification
    doubles as warm-up) and maps every block with ``numpy.memmap`` in
    read-only mode. All processes opening one store share the physical
    pages.
    """

    def __init__(
        self, directory, manifest: dict, verify: bool = True
    ) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self._blocks: Dict[str, np.ndarray] = {}
        for key, entry in manifest.get("entries", {}).items():
            for relpath, spec in entry["blocks"].items():
                path = self.directory / relpath
                if not path.exists():
                    raise CheckpointError(
                        f"store block {relpath} is missing under "
                        f"{self.directory}",
                        path=str(path),
                    )
                if path.stat().st_size != spec["nbytes"]:
                    raise CheckpointError(
                        f"store block {relpath} is {path.stat().st_size} "
                        f"bytes, manifest says {spec['nbytes']} "
                        "(truncated export?)",
                        path=str(path),
                    )
                if verify:
                    actual = _sha256_file(path)
                    if actual != spec["sha256"]:
                        raise CheckpointError(
                            f"checksum mismatch for store block {relpath}: "
                            f"manifest says {spec['sha256'][:12]}…, file "
                            f"hashes to {actual[:12]}…",
                            path=str(path),
                        )
                self._blocks[relpath] = np.memmap(
                    path,
                    dtype=np.dtype(spec["dtype"]),
                    mode="r",
                    shape=tuple(spec["shape"]),
                )

    @classmethod
    def open(cls, directory, verify: bool = True) -> "ModelStore":
        """Open (and by default verify) an exported store directory."""
        directory = Path(directory)
        manifest_path = directory / STORE_MANIFEST_NAME
        if not manifest_path.exists():
            raise CheckpointError(
                f"no store manifest at {manifest_path}",
                path=str(manifest_path),
            )
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        return cls(directory, manifest, verify=verify)

    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Exported ``name@vN`` keys, sorted."""
        return sorted(self.manifest.get("entries", {}))

    @property
    def nbytes(self) -> int:
        """Total logical size of every mapped block."""
        return sum(block.nbytes for block in self._blocks.values())

    def touch(self) -> float:
        """Fault every block's pages in (returns a throwaway checksum).

        Summing each memmap forces the kernel to map all its pages into
        this process, which is what makes a PSS measurement reflect the
        full (shared) store footprint rather than lazily-unmapped zero.
        """
        total = 0.0
        for block in self._blocks.values():
            total += float(np.asarray(block).sum())
        return total

    # ------------------------------------------------------------------
    def frozen_models(self, key: str) -> Dict[str, FrozenModel]:
        """The frozen models of ``key``, backed by the mapped blocks.

        The returned models' ``coef_`` arrays are views over the shared
        pages — building them allocates only the (tiny) offsets copy
        and Python object shells, never a coefficient copy.
        """
        entry = self._entry(key)
        models: Dict[str, FrozenModel] = {}
        for metric in entry["metrics"]:
            coef = self._blocks[f"{key}/{metric}.coef.bin"]
            offsets = self._blocks[f"{key}/{metric}.offsets.bin"]
            correlation = self._blocks.get(f"{key}/{metric}.correlation.bin")
            models[metric] = FrozenModel(
                coef=np.asarray(coef),
                offsets=np.asarray(offsets).reshape(-1),
                metric=metric,
                correlation=(
                    None if correlation is None else np.asarray(correlation)
                ),
            )
        return models

    def served_model(self, key: str) -> ServedModel:
        """Build a ready-to-serve :class:`ServedModel` for ``key``.

        Requires the entry to carry a basis spec (raw-``x`` requests
        must be expandable); coefficient matrices stay memmapped.
        """
        entry = self._entry(key)
        if entry.get("basis") is None:
            raise ServingError(
                f"store entry {key} has no basis spec; it cannot serve "
                "raw-x requests"
            )
        return ServedModel(
            name=entry["name"],
            version=int(entry["version"]),
            basis=basis_from_spec(entry["basis"]),
            models=self.frozen_models(key),
        )

    def _entry(self, key: str) -> dict:
        entries = self.manifest.get("entries", {})
        if key not in entries:
            raise KeyError(
                f"{key!r} is not in the store; exported: {self.keys()}"
            )
        return entries[key]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelStore({str(self.directory)!r}, keys={self.keys()}, "
            f"{self.nbytes / 1e6:.1f} MB)"
        )
