"""Network transport for the cluster: TCP/Unix listener + client library.

PR 6's :class:`~repro.cluster.gateway.ClusterService` is in-host only —
callers must share the gateway's process. This module puts a real
listener in front of it so predict / yield / load / canary traffic
crosses process *and* host boundaries over the same length-prefixed
frame protocol the gateway already speaks to its shards
(:mod:`repro.cluster.protocol`).

:class:`ClusterListener`
    Accepts ``"host:port"`` (TCP, port 0 picks a free one) or
    ``"unix:PATH"`` addresses and serves client connections **on the
    gateway's own event loop** — each frame is dispatched straight to
    the service's async internals (``_predict_async`` & friends), never
    through the blocking façade (which would deadlock the loop). One
    connection serves one request at a time; clients open more
    connections for parallelism. Errors cross the wire as structured
    ``error`` frames carrying an ``etype`` from the serving taxonomy
    (``shed`` / ``deadline`` / ``crash`` / ``protocol`` /
    ``validation`` / ``serving``) so the client re-raises the same
    exception class the in-process API would have raised. A malformed
    or oversized frame is answered with a ``protocol`` error frame and
    the connection closed — never a listener death. The ``"net"``
    fault-injection site fires once per client frame: ``net:drop@i``
    closes the connection unanswered, ``net:slow@i:secs`` delays the
    answer.

:class:`ClusterClient` / :class:`AsyncClusterClient`
    Blocking (thread-safe, one request in flight per connection) and
    asyncio clients exposing the familiar surface: ``predict``,
    ``predict_many``, ``yield_report``, ``load``, ``set_canary``,
    ``promote``, ``clear_canary``, ``describe_routes``, ``report``,
    ``ping``.

Deadlines on the wire are **relative**: a client ships ``deadline_s``
(seconds of budget), the gateway anchors it on its own
``time.monotonic()`` clock, and shard frames carry the remaining budget
re-stamped at write time — no wall-clock instant ever crosses a machine
boundary, so NTP steps and cross-host clock skew cannot expire or
immortalize a request.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import socket
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.protocol import (
    ProtocolError,
    read_frame,
    read_frame_async,
    send_frame,
    write_frame_async,
)
from repro.errors import (
    DeadlineError,
    ServingError,
    ShardCrashError,
    ShedError,
)
from repro.faults import FaultPlan
from repro.serving.requests import PredictionResult

__all__ = [
    "AsyncClusterClient",
    "ClusterClient",
    "ClusterListener",
    "parse_address",
]


def parse_address(address: str) -> Tuple[str, Union[Tuple[str, int], str]]:
    """Parse ``"host:port"`` / ``"unix:PATH"`` into ``(scheme, target)``.

    Returns ``("tcp", (host, port))`` or ``("unix", path)``. IPv6
    literals may be bracketed (``"[::1]:9000"``).
    """
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError("unix address needs a path: 'unix:PATH'")
        return "unix", path
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address must be 'host:port' or 'unix:PATH', got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"address has a non-integer port: {address!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port must be in [0, 65535], got {port}")
    return "tcp", (host.strip("[]"), port)


# ----------------------------------------------------------------------
# Error taxonomy <-> wire etype.
# ----------------------------------------------------------------------
#: isinstance checks run in order — most specific classes first
#: (ProtocolError subclasses ServingError, for instance).
_WIRE_ETYPES: Tuple[Tuple[type, str], ...] = (
    (ShedError, "shed"),
    (DeadlineError, "deadline"),
    (ShardCrashError, "crash"),
    (ProtocolError, "protocol"),
    (ServingError, "serving"),
    (ValueError, "validation"),
)

_CLIENT_ERRORS: Dict[str, type] = {
    "shed": ShedError,
    "deadline": DeadlineError,
    "crash": ShardCrashError,
    "protocol": ProtocolError,
    "validation": ValueError,
    "serving": ServingError,
}


def _wire_etype(error: BaseException) -> str:
    for cls, etype in _WIRE_ETYPES:
        if isinstance(error, cls):
            return etype
    return "serving"


def _error_from_frame(header: Dict) -> Exception:
    cls = _CLIENT_ERRORS.get(header.get("etype"), ServingError)
    return cls(str(header.get("error", "cluster error")))


# ----------------------------------------------------------------------
# Shared request/reply codecs (used by both clients and tested against
# the listener's dispatch).
# ----------------------------------------------------------------------
def _encode_predict(
    name: str,
    x: np.ndarray,
    states: Sequence[int],
    deadline_s: Optional[float],
) -> Tuple[Dict, List[np.ndarray]]:
    header: Dict = {"kind": "predict", "name": str(name)}
    if deadline_s is not None:
        header["deadline_s"] = float(deadline_s)
    return header, [
        np.ascontiguousarray(np.asarray(x, dtype=float)),
        np.ascontiguousarray(np.asarray(states, dtype=np.int64)),
    ]


def _decode_results(
    header: Dict, arrays: Sequence[np.ndarray]
) -> List[PredictionResult]:
    if not arrays:
        return []
    metrics = list(header.get("metrics", ()))
    version = int(header.get("version", 0))
    values, cached = arrays[:-1], arrays[-1]
    return [
        PredictionResult(
            values={
                metric: float(values[m][row])
                for m, metric in enumerate(metrics)
            },
            cached=bool(cached[row]),
            version=version,
        )
        for row in range(int(cached.shape[0]))
    ]


def _results_frame(
    results: Sequence[PredictionResult],
) -> Tuple[Dict, List[np.ndarray]]:
    n = len(results)
    metrics = list(results[0].values) if n else []
    version = results[0].version if n else 0
    values = [
        np.fromiter(
            (r.values[metric] for r in results), dtype=float, count=n
        )
        for metric in metrics
    ]
    cached = np.fromiter((r.cached for r in results), dtype=np.uint8, count=n)
    return (
        {"kind": "result", "metrics": metrics, "version": int(version)},
        values + [cached],
    )


# ----------------------------------------------------------------------
# Listener (gateway side).
# ----------------------------------------------------------------------
class ClusterListener:
    """Serve a :class:`ClusterService` on a TCP or Unix-domain socket.

    Runs on the service's gateway loop: frames are dispatched to the
    service's async internals directly, so a listener request shares
    the exact routing / batching / shedding / failover path of the
    in-process API. Start the service first; stop the listener before
    stopping the service.

    Parameters
    ----------
    service:
        A **started** :class:`~repro.cluster.gateway.ClusterService`.
    address:
        ``"host:port"`` (``:0`` picks a free port — read
        :attr:`address` for the bound one) or ``"unix:PATH"``.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; its ``"net"`` site
        fires once per client frame (``net:drop`` / ``net:slow``).
    """

    def __init__(
        self,
        service,
        address: str = "127.0.0.1:0",
        faults: Optional[FaultPlan] = None,
    ) -> None:
        parse_address(address)  # fail fast on a bad spec
        self.service = service
        self.faults = faults
        self._address = address
        self._bound: Optional[str] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set = set()

    @property
    def address(self) -> str:
        """The bound address (``"host:port"`` or ``"unix:PATH"``)."""
        if self._bound is None:
            raise ServingError("listener is not started")
        return self._bound

    def start(self) -> "ClusterListener":
        """Bind and start accepting clients; returns ``self``."""
        if self._server is not None:
            raise ServingError("listener already started")
        self.service._require_started()
        self._server = self.service._run(self._start_async())
        return self

    async def _start_async(self) -> asyncio.AbstractServer:
        scheme, target = parse_address(self._address)
        if scheme == "tcp":
            host, port = target
            server = await asyncio.start_server(
                self._handle, host=host, port=port
            )
            bound_host, bound_port = server.sockets[0].getsockname()[:2]
            self._bound = f"{bound_host}:{bound_port}"
        else:
            server = await asyncio.start_unix_server(
                self._handle, path=target
            )
            self._bound = f"unix:{target}"
        return server

    def stop(self) -> None:
        """Stop accepting and close every live client connection."""
        server, self._server = self._server, None
        if server is None:
            return
        self._bound = None
        self.service._run(self._stop_async(server))

    async def _stop_async(self, server: asyncio.AbstractServer) -> None:
        server.close()
        for writer in list(self._writers):
            with contextlib.suppress(OSError, RuntimeError):
                writer.close()
        await server.wait_closed()

    def __enter__(self) -> "ClusterListener":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- per-connection frame loop (gateway loop) -----------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    header, arrays = await read_frame_async(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                ):
                    return  # clean close or mid-frame disconnect
                except ProtocolError as error:
                    # Corrupt prefix / malformed frame: the stream
                    # position is unrecoverable, so answer once and
                    # hang up — but never die.
                    await self._try_write(
                        writer,
                        {
                            "kind": "error",
                            "id": None,
                            "etype": "protocol",
                            "error": str(error),
                        },
                    )
                    return
                fault = (
                    self.faults.fire("net")
                    if self.faults is not None
                    else None
                )
                if fault is not None and fault.mode == "drop":
                    return
                if fault is not None and fault.mode == "slow":
                    await asyncio.sleep(fault.stall_seconds)
                request_id = header.get("id")
                try:
                    reply, reply_arrays = await self._dispatch(
                        header, arrays
                    )
                except Exception as error:  # answer, keep serving
                    reply, reply_arrays = {
                        "kind": "error",
                        "etype": _wire_etype(error),
                        "error": str(error),
                    }, []
                if not await self._try_write(
                    writer, dict(reply, id=request_id), reply_arrays
                ):
                    return
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(OSError, RuntimeError):
                writer.close()

    async def _try_write(
        self,
        writer: asyncio.StreamWriter,
        header: Dict,
        arrays: Sequence[np.ndarray] = (),
    ) -> bool:
        try:
            await write_frame_async(writer, header, arrays)
            return True
        except (ConnectionError, OSError):
            return False

    async def _dispatch(
        self, header: Dict, arrays: List[np.ndarray]
    ) -> Tuple[Dict, List[np.ndarray]]:
        """Answer one client frame via the service's async internals."""
        from repro.cluster.gateway import _validate_predict

        service = self.service
        kind = header.get("kind")
        if kind == "predict":
            if len(arrays) != 2:
                raise ProtocolError(
                    f"predict frame needs [x, states] payload arrays, "
                    f"got {len(arrays)}"
                )
            name = header.get("name")
            if not isinstance(name, str):
                raise ProtocolError(
                    f"predict frame needs a string 'name', got {name!r}"
                )
            x, states = _validate_predict(arrays[0], arrays[1])
            deadline_s = service._resolve_deadline(
                header.get("deadline_s")
            )
            if x.shape[0] == 0:
                return _results_frame([])
            results = await service._predict_async(
                name, x, states, deadline_s
            )
            return _results_frame(results)
        if kind == "yield":
            name = header.get("name")
            if not isinstance(name, str):
                raise ProtocolError(
                    f"yield frame needs a string 'name', got {name!r}"
                )
            reply = await service._yield_async(
                name,
                header.get("specs", ()),
                int(header.get("n_samples", 400)),
                int(header.get("seed", 0)),
                float(header.get("confidence", 0.95)),
                header.get("states"),
                service._resolve_deadline(header.get("deadline_s")),
            )
            return {
                "kind": "yield-result",
                "key": reply.get("key"),
                "version": reply.get("version"),
                "peak_bytes": reply.get("peak_bytes"),
                "report": reply.get("report"),
            }, []
        if kind == "load":
            key = await service._load_async(str(header.get("key")))
            return {"kind": "loaded", "key": key}, []
        if kind == "set-canary":
            key = await service._set_canary_async(
                str(header.get("name")),
                str(header.get("canary")),
                float(header.get("weight", 0.0)),
            )
            return {"kind": "canary", "key": key}, []
        if kind == "promote":
            key = service.promote(str(header.get("name")))
            return {"kind": "promoted", "key": key}, []
        if kind == "clear-canary":
            service.clear_canary(str(header.get("name")))
            return {"kind": "ok"}, []
        if kind == "routes":
            return {
                "kind": "routes",
                "routes": service.describe_routes(),
            }, []
        if kind == "report":
            return {
                "kind": "report",
                "text": await service._report_async(),
            }, []
        if kind == "ping":
            return {"kind": "pong"}, []
        raise ProtocolError(f"unknown frame kind {kind!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterListener({self._bound or self._address!r}, "
            f"started={self._server is not None})"
        )


# ----------------------------------------------------------------------
# Clients.
# ----------------------------------------------------------------------
class _ClientCore:
    """Header builders shared by the blocking and asyncio clients."""

    @staticmethod
    def _yield_header(
        name: str,
        specs: Sequence,
        n_samples: int,
        seed: int,
        confidence: float,
        states: Optional[Sequence[int]],
        deadline_s: Optional[float],
    ) -> Dict:
        from repro.cluster.gateway import _parse_specs

        header: Dict = {
            "kind": "yield",
            "name": str(name),
            "specs": _parse_specs(specs),
            "n_samples": int(n_samples),
            "seed": int(seed),
            "confidence": float(confidence),
        }
        if states is not None:
            header["states"] = [int(s) for s in states]
        if deadline_s is not None:
            header["deadline_s"] = float(deadline_s)
        return header


class ClusterClient(_ClientCore):
    """Blocking client for a :class:`ClusterListener` endpoint.

    Thread-safe: a lock serializes the one-request-per-connection wire
    exchange. Open one client per concurrent caller (or per thread) for
    parallelism — connections are cheap, the models live server-side.

    Parameters
    ----------
    address:
        ``"host:port"`` or ``"unix:PATH"``, as bound by the listener.
    connect_timeout_s:
        Socket connect timeout; after connecting the socket reverts to
        blocking mode (request bounds come from server-side deadlines).
    """

    def __init__(
        self, address: str, connect_timeout_s: float = 30.0
    ) -> None:
        scheme, target = parse_address(address)
        if scheme == "tcp":
            self._sock = socket.create_connection(
                target, timeout=connect_timeout_s
            )
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        else:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(connect_timeout_s)
            self._sock.connect(target)
        self._sock.settimeout(None)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.address = address

    # -- plumbing -------------------------------------------------------
    def _roundtrip(
        self, header: Dict, arrays: Sequence[np.ndarray] = ()
    ) -> Tuple[Dict, List[np.ndarray]]:
        request = dict(header, id=next(self._ids))
        with self._lock:
            send_frame(self._sock, request, arrays)
            reply, reply_arrays = read_frame(self._sock)
        if reply.get("kind") == "error":
            raise _error_from_frame(reply)
        return reply, reply_arrays

    # -- serving --------------------------------------------------------
    def predict_many(
        self,
        name: str,
        x,
        states,
        deadline_s: Optional[float] = None,
    ) -> List[PredictionResult]:
        """Predict a batch; mirrors ``ClusterService.predict_many``."""
        reply, arrays = self._roundtrip(
            *_encode_predict(name, x, states, deadline_s)
        )
        return _decode_results(reply, arrays)

    def predict(
        self,
        name: str,
        x,
        state: int,
        deadline_s: Optional[float] = None,
    ) -> PredictionResult:
        """Predict one design point."""
        return self.predict_many(
            name, np.asarray(x, dtype=float)[None, :], [state],
            deadline_s=deadline_s,
        )[0]

    def yield_report(
        self,
        name: str,
        specs: Sequence,
        n_samples: int = 400,
        seed: int = 0,
        confidence: float = 0.95,
        states: Optional[Sequence[int]] = None,
        deadline_s: Optional[float] = None,
    ) -> Dict:
        """Fleet yield/moment report; mirrors the service method."""
        reply, _ = self._roundtrip(
            self._yield_header(
                name, specs, n_samples, seed, confidence, states,
                deadline_s,
            )
        )
        return reply

    # -- control plane --------------------------------------------------
    def load(self, key: str) -> str:
        """Export + load ``key`` server-side; returns the resolved key."""
        reply, _ = self._roundtrip({"kind": "load", "key": str(key)})
        return reply["key"]

    def set_canary(self, name: str, canary_key: str, weight: float) -> str:
        """Start a weighted canary split server-side."""
        reply, _ = self._roundtrip({
            "kind": "set-canary",
            "name": str(name),
            "canary": str(canary_key),
            "weight": float(weight),
        })
        return reply["key"]

    def promote(self, name: str) -> str:
        """Promote the canary to stable."""
        reply, _ = self._roundtrip({"kind": "promote", "name": str(name)})
        return reply["key"]

    def clear_canary(self, name: str) -> None:
        """Drop the canary split."""
        self._roundtrip({"kind": "clear-canary", "name": str(name)})

    def describe_routes(self) -> Dict[str, Dict]:
        """The server's routing-table digest."""
        reply, _ = self._roundtrip({"kind": "routes"})
        return reply["routes"]

    def report(self) -> str:
        """The server's full text report."""
        reply, _ = self._roundtrip({"kind": "report"})
        return reply["text"]

    def ping(self) -> bool:
        """Round-trip liveness probe."""
        reply, _ = self._roundtrip({"kind": "ping"})
        return reply.get("kind") == "pong"

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with contextlib.suppress(OSError):
            self._sock.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterClient({self.address!r})"


class AsyncClusterClient(_ClientCore):
    """Asyncio client for a :class:`ClusterListener` endpoint.

    Build with :meth:`connect`; one request is in flight per client at
    a time (an ``asyncio.Lock`` serializes the exchange) — open several
    clients to overlap requests from one loop.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        address: str,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._ids = itertools.count(1)
        self.address = address

    @classmethod
    async def connect(cls, address: str) -> "AsyncClusterClient":
        """Open a connection to ``address`` and wrap it."""
        scheme, target = parse_address(address)
        if scheme == "tcp":
            host, port = target
            reader, writer = await asyncio.open_connection(host, port)
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        else:
            reader, writer = await asyncio.open_unix_connection(target)
        return cls(reader, writer, address)

    async def _roundtrip(
        self, header: Dict, arrays: Sequence[np.ndarray] = ()
    ) -> Tuple[Dict, List[np.ndarray]]:
        request = dict(header, id=next(self._ids))
        async with self._lock:
            await write_frame_async(self._writer, request, arrays)
            reply, reply_arrays = await read_frame_async(self._reader)
        if reply.get("kind") == "error":
            raise _error_from_frame(reply)
        return reply, reply_arrays

    async def predict_many(
        self,
        name: str,
        x,
        states,
        deadline_s: Optional[float] = None,
    ) -> List[PredictionResult]:
        """Predict a batch; mirrors ``ClusterService.predict_many``."""
        reply, arrays = await self._roundtrip(
            *_encode_predict(name, x, states, deadline_s)
        )
        return _decode_results(reply, arrays)

    async def predict(
        self,
        name: str,
        x,
        state: int,
        deadline_s: Optional[float] = None,
    ) -> PredictionResult:
        """Predict one design point."""
        results = await self.predict_many(
            name, np.asarray(x, dtype=float)[None, :], [state],
            deadline_s=deadline_s,
        )
        return results[0]

    async def yield_report(
        self,
        name: str,
        specs: Sequence,
        n_samples: int = 400,
        seed: int = 0,
        confidence: float = 0.95,
        states: Optional[Sequence[int]] = None,
        deadline_s: Optional[float] = None,
    ) -> Dict:
        """Fleet yield/moment report; mirrors the service method."""
        reply, _ = await self._roundtrip(
            self._yield_header(
                name, specs, n_samples, seed, confidence, states,
                deadline_s,
            )
        )
        return reply

    async def load(self, key: str) -> str:
        """Export + load ``key`` server-side; returns the resolved key."""
        reply, _ = await self._roundtrip({"kind": "load", "key": str(key)})
        return reply["key"]

    async def set_canary(
        self, name: str, canary_key: str, weight: float
    ) -> str:
        """Start a weighted canary split server-side."""
        reply, _ = await self._roundtrip({
            "kind": "set-canary",
            "name": str(name),
            "canary": str(canary_key),
            "weight": float(weight),
        })
        return reply["key"]

    async def promote(self, name: str) -> str:
        """Promote the canary to stable."""
        reply, _ = await self._roundtrip(
            {"kind": "promote", "name": str(name)}
        )
        return reply["key"]

    async def clear_canary(self, name: str) -> None:
        """Drop the canary split."""
        await self._roundtrip({"kind": "clear-canary", "name": str(name)})

    async def describe_routes(self) -> Dict[str, Dict]:
        """The server's routing-table digest."""
        reply, _ = await self._roundtrip({"kind": "routes"})
        return reply["routes"]

    async def report(self) -> str:
        """The server's full text report."""
        reply, _ = await self._roundtrip({"kind": "report"})
        return reply["text"]

    async def ping(self) -> bool:
        """Round-trip liveness probe."""
        reply, _ = await self._roundtrip({"kind": "ping"})
        return reply.get("kind") == "pong"

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        with contextlib.suppress(OSError, RuntimeError):
            self._writer.close()
            await self._writer.wait_closed()

    async def __aenter__(self) -> "AsyncClusterClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AsyncClusterClient({self.address!r})"
