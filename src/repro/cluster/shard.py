"""Shard worker: a PredictionEngine over memmapped models, behind a pipe.

``shard_main`` is the spawn-context entry point of one cluster worker.
At startup it opens the shared :class:`~repro.cluster.store.ModelStore`
(sha256-verified), builds a private micro-batching
:class:`~repro.serving.engine.PredictionEngine`, instantiates a
:class:`~repro.serving.engine.ServedModel` per assigned ``name@vN`` key
(coefficients stay memmapped — the worker never copies them), measures
the PSS cost of the mapping, and then serves a simple frame loop on its
socket:

``predict``
    One frame may coalesce several gateway sub-requests over the same
    key; each carries its own relative remaining *budget* (seconds),
    stamped at frame-write time on the sender's monotonic clock.
    Requests whose budget is already spent are answered with a
    structured ``deadline`` error (the rows are not computed); the rest
    are answered by **one** ``predict_many`` call — the single-matmul
    hot path of the whole cluster.
``yield``
    Computes a correlation-shared yield/moment report for one served
    key (see :mod:`repro.yields`) and answers it entirely inside the
    reply header — per-state yields with CIs are a few KB of JSON at
    K=201. The handler runs under ``tracemalloc`` and reports the
    computation's peak allocation, so the caller can *prove* no
    MK × MK covariance was densified inside the worker.
``metrics``
    Ships the engine's :meth:`ServingMetrics.snapshot` plus cache size
    and the store-mapping PSS numbers, so the gateway can aggregate
    counters across the fleet.
``load``
    Re-opens the store manifest (a canary export may have extended it)
    and installs a new key for serving.
``ping`` / ``shutdown``
    Liveness probe / clean exit.
``kill`` / ``hang``
    Chaos hooks (see ``shard:kill@i`` fault specs): hard ``os._exit``
    and stop-reading-forever respectively.

The loop never lets a request error kill the process: computation
failures are answered as structured error frames and the worker keeps
serving. Only a closed socket (gateway gone) or ``shutdown`` ends it.
"""

from __future__ import annotations

import os
import socket
import time
import tracemalloc
from typing import Dict, Optional

import numpy as np

from repro.cluster.protocol import read_frame, send_frame
from repro.cluster.store import ModelStore, mapped_pss_bytes
from repro.serving.engine import (
    BatchConfig,
    CacheConfig,
    PredictionEngine,
    ServedModel,
)

__all__ = ["shard_main"]


def _serve_predict(
    engine: PredictionEngine,
    served: Dict[str, ServedModel],
    sock: socket.socket,
    header: Dict,
    arrays,
) -> None:
    """Answer one (possibly coalesced) predict frame."""
    key = header["key"]
    reqs = header["reqs"]
    x, states = arrays
    if key not in served:
        for req in reqs:
            send_frame(sock, {
                "kind": "error", "id": req["id"], "etype": "serving",
                "error": f"shard does not serve {key!r}",
            })
        return
    # The wire carries a *relative* remaining budget (seconds), stamped
    # by the gateway at frame-write time; each process reads only its
    # own monotonic clock, so an NTP step or cross-host wall-clock skew
    # can neither expire nor immortalize a request. A budget that
    # reached zero before the frame was even written is dead on arrival.
    live, expired = [], []
    for req in reqs:
        budget = req.get("budget")
        if budget is not None and budget <= 0.0:
            expired.append(req)
        else:
            live.append(req)
    for req in expired:
        send_frame(sock, {
            "kind": "error", "id": req["id"], "etype": "deadline",
            "error": (
                "request expired in the gateway queue "
                "(remaining budget 0 at frame-write time)"
            ),
        })
    if not live:
        return
    # Slice the frame's stacked rows down to the still-live requests.
    offsets, cursor = {}, 0
    keep = []
    for req in reqs:
        offsets[req["id"]] = (cursor, cursor + req["n"])
        cursor += req["n"]
    for req in live:
        start, stop = offsets[req["id"]]
        keep.extend(range(start, stop))
    if len(keep) != x.shape[0]:
        index = np.asarray(keep, dtype=int)
        x, states = x[index], states[index]
    model = served[key]
    try:
        results = engine.predict_many(
            model, np.asarray(x, dtype=float), np.asarray(states, dtype=int)
        )
    except Exception as error:  # answer, never die
        for req in live:
            send_frame(sock, {
                "kind": "error", "id": req["id"], "etype": "serving",
                "error": f"{type(error).__name__}: {error}",
            })
        return
    metrics_names = list(model.metric_names)
    cursor = 0
    for req in live:
        n = req["n"]
        chunk = results[cursor:cursor + n]
        cursor += n
        values = [
            np.fromiter(
                (r.values[m] for r in chunk), dtype=float, count=n
            )
            for m in metrics_names
        ]
        cached = np.fromiter(
            (r.cached for r in chunk), dtype=np.uint8, count=n
        )
        send_frame(
            sock,
            {
                "kind": "result",
                "id": req["id"],
                "metrics": metrics_names,
                "version": model.version,
            },
            values + [cached],
        )


def _serve_yield(
    served: Dict[str, ServedModel],
    sock: socket.socket,
    header: Dict,
) -> None:
    """Answer one yield-report frame, header-only (no binary payload).

    The whole computation — per-state sampling through the memmapped
    models plus the K × K shrinkage solve — runs under ``tracemalloc``;
    the measured peak rides back in the reply so the gateway side can
    assert the shard never materialized anything near an MK × MK
    covariance while answering fleet-wide per-state yields.
    """
    from repro.applications.yield_estimation import Specification
    from repro.yields import compute_yield_report, report_to_dict

    key = header["key"]
    request_id = header.get("id")
    if key not in served:
        send_frame(sock, {
            "kind": "error", "id": request_id, "etype": "serving",
            "error": f"shard does not serve {key!r}",
        })
        return
    budget = header.get("budget")
    if budget is not None and budget <= 0.0:
        send_frame(sock, {
            "kind": "error", "id": request_id, "etype": "deadline",
            "error": (
                "yield request expired in the gateway queue "
                "(remaining budget 0 at frame-write time)"
            ),
        })
        return
    model = served[key]
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        specs = [
            Specification(
                metric=s["metric"], bound=float(s["bound"]), kind=s["kind"]
            )
            for s in header["specs"]
        ]
        report = compute_yield_report(
            model.models,
            model.basis,
            specs,
            n_samples=int(header.get("n_samples", 400)),
            seed=int(header.get("seed", 0)),
            confidence=float(header.get("confidence", 0.95)),
        )
        _, peak_bytes = tracemalloc.get_traced_memory()
    except Exception as error:  # answer, never die
        send_frame(sock, {
            "kind": "error", "id": request_id, "etype": "serving",
            "error": f"{type(error).__name__}: {error}",
        })
        return
    finally:
        if not was_tracing:
            tracemalloc.stop()
    send_frame(sock, {
        "kind": "yield-result",
        "id": request_id,
        "key": key,
        "version": model.version,
        "peak_bytes": int(peak_bytes),
        "report": report_to_dict(report),
    })


def shard_main(
    sock: socket.socket,
    store_dir: str,
    keys,
    shard_index: int,
    batch: Optional[BatchConfig] = None,
    cache: Optional[CacheConfig] = None,
) -> None:
    """Run one shard worker over its gateway socket until shutdown.

    Spawn-context entry point (module-level, picklable); ``sock`` is
    the worker's end of a ``socketpair`` duplicated into the child.
    Sends a ``ready`` frame — carrying the store size and this
    process's current PSS charge for the mapped store — once every
    assigned key is installed, so the gateway knows when the shard is
    servable.
    """
    store = ModelStore.open(store_dir)
    store.touch()
    engine = PredictionEngine(batch=batch, cache=cache)
    served: Dict[str, ServedModel] = {
        key: store.served_model(key) for key in keys
    }
    send_frame(sock, {
        "kind": "ready",
        "shard": int(shard_index),
        "pid": os.getpid(),
        "keys": sorted(served),
        "store_bytes": int(store.nbytes),
        "store_pss_bytes": mapped_pss_bytes(store_dir),
    })
    while True:
        try:
            header, arrays = read_frame(sock)
        except (EOFError, ConnectionResetError, OSError):
            return
        kind = header.get("kind")
        if kind == "predict":
            _serve_predict(engine, served, sock, header, arrays)
        elif kind == "yield":
            _serve_yield(served, sock, header)
        elif kind == "metrics":
            send_frame(sock, {
                "kind": "metrics-result",
                "id": header["id"],
                "shard": int(shard_index),
                "pid": os.getpid(),
                "engine": engine.metrics.snapshot(),
                "cache_size": engine.cache_size,
                "store_bytes": int(store.nbytes),
                "store_pss_bytes": mapped_pss_bytes(store_dir),
            })
        elif kind == "load":
            key = header["key"]
            try:
                if key not in store.keys():
                    store = ModelStore.open(store_dir)
                served[key] = store.served_model(key)
            except Exception as error:
                send_frame(sock, {
                    "kind": "error", "id": header["id"],
                    "etype": "serving",
                    "error": f"{type(error).__name__}: {error}",
                })
                continue
            send_frame(sock, {
                "kind": "loaded", "id": header["id"], "key": key,
            })
        elif kind == "ping":
            send_frame(sock, {"kind": "pong", "id": header["id"]})
        elif kind == "hang":
            # Chaos: stop reading (and answering) without dying — the
            # gateway's per-request deadlines must take over.
            while True:
                time.sleep(3600.0)
        elif kind == "kill":
            # Chaos: die the hard way, mid-protocol.
            os._exit(1)
        elif kind == "shutdown":
            try:
                send_frame(sock, {"kind": "bye"})
            except OSError:  # pragma: no cover - gateway already gone
                pass
            return
        else:
            send_frame(sock, {
                "kind": "error", "id": header.get("id"),
                "etype": "protocol",
                "error": f"unknown frame kind {kind!r}",
            })
