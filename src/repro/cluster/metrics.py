"""Cluster observability: per-shard and per-version gateway telemetry.

The single-process :class:`~repro.serving.metrics.ServingMetrics` counts
what one engine did; a cluster needs two more axes. ``ClusterMetrics``
keeps, per **shard**, request/row counts, latency windows, shed and
deadline-expiry counts, crash-failed requests and respawns — and, per
**version key** (``name@vN``), the same traffic counters, which is what
makes a canary split observable: the stable and canary versions of one
name report separate latency percentiles and error counts, so a bad
canary shows up in its own numbers before cutover.

``format_cluster_report`` renders the gateway snapshot plus the
per-shard engine snapshots (fetched over the wire) into one text
report; the engine counters are **summed across every shard** via
:func:`repro.serving.metrics.aggregate_snapshots` — a report that
showed only shard 0's private cache stats would under-count the rest of
the fleet.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.serving.metrics import aggregate_snapshots

__all__ = ["ClusterMetrics", "format_cluster_report"]


def _percentiles(latencies: Deque[float]) -> Dict[str, Optional[float]]:
    """p50/p95/p99 of a latency window, in milliseconds."""
    if not latencies:
        return {
            "p50_latency_ms": None,
            "p95_latency_ms": None,
            "p99_latency_ms": None,
        }
    values = np.fromiter(latencies, dtype=float)
    p50, p95, p99 = np.percentile(values, (50.0, 95.0, 99.0))
    return {
        "p50_latency_ms": float(p50) * 1e3,
        "p95_latency_ms": float(p95) * 1e3,
        "p99_latency_ms": float(p99) * 1e3,
    }


@dataclass
class _LaneStats:
    """Counters of one observation lane (a shard or a version key)."""

    requests: int = 0
    rows: int = 0
    shed: int = 0
    deadline_expired: int = 0
    crash_failures: int = 0
    respawns: int = 0
    failovers: int = 0
    latencies: Deque[float] = field(default_factory=lambda: deque(maxlen=10_000))

    def snapshot(self) -> Dict[str, Optional[float]]:
        """Plain-dict digest including latency percentiles."""
        out: Dict[str, Optional[float]] = {
            "requests": self.requests,
            "rows": self.rows,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "crash_failures": self.crash_failures,
            "respawns": self.respawns,
            "failovers": self.failovers,
        }
        out.update(_percentiles(self.latencies))
        return out


class ClusterMetrics:
    """Thread-safe per-shard / per-version counters for the gateway.

    Updates come from the gateway's event loop; reads may come from any
    thread (CLI, benchmark, tests), hence the lock.

    Parameters
    ----------
    latency_window:
        Sliding-window size of each lane's latency deque.
    """

    def __init__(self, latency_window: int = 10_000) -> None:
        if latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self._window = latency_window
        self._lock = threading.Lock()
        self._shards: Dict[int, _LaneStats] = {}
        self._versions: Dict[str, _LaneStats] = {}

    def _shard(self, index: int) -> _LaneStats:
        return self._shards.setdefault(
            int(index),
            _LaneStats(latencies=deque(maxlen=self._window)),
        )

    def _version(self, key: str) -> _LaneStats:
        return self._versions.setdefault(
            str(key),
            _LaneStats(latencies=deque(maxlen=self._window)),
        )

    # ------------------------------------------------------------------
    def record_batch(
        self, shard: int, key: str, n: int, latency_s: float
    ) -> None:
        """Count ``n`` answered requests sharing one observed latency."""
        with self._lock:
            for lane in (self._shard(shard), self._version(key)):
                lane.requests += int(n)
                lane.rows += int(n)
                lane.latencies.append(float(latency_s))

    def record_shed(self, shard: int, key: str, n: int) -> None:
        """Count ``n`` requests turned away by admission control."""
        with self._lock:
            self._shard(shard).shed += int(n)
            self._version(key).shed += int(n)

    def record_deadline_expired(
        self, shard: int, key: str, n: int
    ) -> None:
        """Count ``n`` requests whose deadline passed unanswered."""
        with self._lock:
            self._shard(shard).deadline_expired += int(n)
            self._version(key).deadline_expired += int(n)

    def record_crash_failures(
        self, shard: int, n: int, key: Optional[str] = None
    ) -> None:
        """Count ``n`` in-flight requests failed by a shard death."""
        with self._lock:
            self._shard(shard).crash_failures += int(n)
            if key is not None:
                self._version(key).crash_failures += int(n)

    def record_respawn(self, shard: int) -> None:
        """Count one dead-shard respawn."""
        with self._lock:
            self._shard(shard).respawns += 1

    def record_failover(
        self, from_shard: int, to_shard: int, key: str, n: int
    ) -> None:
        """Count ``n`` requests failed over from one replica to another.

        Charged to the *abandoned* shard's lane (the replica that
        crashed, hung, or was already down) and to the version key —
        the receiving shard's traffic shows up through the ordinary
        :meth:`record_batch` call when the retry succeeds.
        """
        with self._lock:
            self._shard(from_shard).failovers += int(n)
            self._shard(to_shard)  # materialize the receiving lane
            self._version(key).failovers += int(n)

    # ------------------------------------------------------------------
    @property
    def total_shed(self) -> int:
        """Requests turned away by admission control, all shards."""
        with self._lock:
            return sum(lane.shed for lane in self._shards.values())

    @property
    def total_deadline_expired(self) -> int:
        """Requests abandoned on their deadline, all shards."""
        with self._lock:
            return sum(
                lane.deadline_expired for lane in self._shards.values()
            )

    @property
    def total_respawns(self) -> int:
        """Dead-shard respawns, all shards."""
        with self._lock:
            return sum(lane.respawns for lane in self._shards.values())

    @property
    def total_failovers(self) -> int:
        """Requests failed over to a replica, all shards."""
        with self._lock:
            return sum(lane.failovers for lane in self._shards.values())

    def snapshot(self) -> Dict[str, Dict]:
        """Nested plain-dict digest: ``{"shards": …, "versions": …}``."""
        with self._lock:
            return {
                "shards": {
                    index: lane.snapshot()
                    for index, lane in sorted(self._shards.items())
                },
                "versions": {
                    key: lane.snapshot()
                    for key, lane in sorted(self._versions.items())
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ClusterMetrics(shards={sorted(self._shards)}, "
                f"versions={sorted(self._versions)})"
            )


def _fmt_ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}"


def format_cluster_report(
    snapshot: Dict[str, Dict],
    engine_snapshots: Optional[Sequence[Dict]] = None,
    routes: Optional[Dict[str, Dict]] = None,
) -> str:
    """Render a gateway snapshot (and shard engine stats) as text.

    Parameters
    ----------
    snapshot:
        A :meth:`ClusterMetrics.snapshot` dict.
    engine_snapshots:
        Optional per-shard ``ServingMetrics.snapshot()`` dicts fetched
        from the workers; rendered per shard *and* summed into one
        aggregate line (the whole fleet's cache traffic, not shard 0's).
    routes:
        Optional routing-table digest (``ClusterService.describe_routes``)
        so the report shows which versions serve which names and any
        live canary weights.
    """
    lines: List[str] = ["CLUSTER REPORT", ""]
    lines.append(
        f"{'SHARD':<6} {'REQS':>8} {'SHED':>6} {'DEADLN':>7} "
        f"{'CRASH':>6} {'RESPAWN':>8} {'FAILOVR':>8} {'p50ms':>9} "
        f"{'p95ms':>9} {'p99ms':>9}"
    )
    for index, lane in snapshot.get("shards", {}).items():
        lines.append(
            f"{index:<6} {lane['requests']:>8} {lane['shed']:>6} "
            f"{lane['deadline_expired']:>7} {lane['crash_failures']:>6} "
            f"{lane['respawns']:>8} {lane.get('failovers', 0):>8} "
            f"{_fmt_ms(lane['p50_latency_ms']):>9} "
            f"{_fmt_ms(lane['p95_latency_ms']):>9} "
            f"{_fmt_ms(lane['p99_latency_ms']):>9}"
        )
    versions = snapshot.get("versions", {})
    if versions:
        lines.append("")
        lines.append(
            f"{'VERSION':<24} {'REQS':>8} {'SHED':>6} {'DEADLN':>7} "
            f"{'p50ms':>9} {'p95ms':>9} {'p99ms':>9}"
        )
        for key, lane in versions.items():
            lines.append(
                f"{key:<24} {lane['requests']:>8} {lane['shed']:>6} "
                f"{lane['deadline_expired']:>7} "
                f"{_fmt_ms(lane['p50_latency_ms']):>9} "
                f"{_fmt_ms(lane['p95_latency_ms']):>9} "
                f"{_fmt_ms(lane['p99_latency_ms']):>9}"
            )
    if routes:
        lines.append("")
        lines.append("ROUTES")
        for name, route in sorted(routes.items()):
            canary = route.get("canary")
            replicas = route.get("replicas")
            placement = (
                f" shards={list(replicas)}"
                if replicas and len(replicas) > 1
                else ""
            )
            if canary:
                lines.append(
                    f"  {name}: stable={route['stable']} "
                    f"canary={canary} weight={route['weight']:.2f}"
                    f"{placement}"
                )
            else:
                lines.append(
                    f"  {name}: stable={route['stable']}{placement}"
                )
    if engine_snapshots:
        lines.append("")
        lines.append(f"ENGINES ({len(engine_snapshots)} shards)")
        for index, engine in enumerate(engine_snapshots):
            lines.append(
                f"  shard {index}: requests={engine.get('requests', 0)} "
                f"cache_hit_rate={engine.get('cache_hit_rate', 0.0):.1%} "
                f"batches={engine.get('batches', 0)} "
                f"mean_batch={engine.get('mean_batch_size', 0.0):.1f}"
            )
        total = aggregate_snapshots(engine_snapshots)
        lines.append(
            f"  aggregate: requests={total['requests']} "
            f"cache_hits={total['cache_hits']} "
            f"cache_misses={total['cache_misses']} "
            f"cache_hit_rate={total['cache_hit_rate']:.1%} "
            f"batches={total['batches']} "
            f"rows={total['batched_rows']}"
        )
    return "\n".join(lines)
