"""Horizontal serving cluster: gateway, shard workers, shared store.

This package scales the single-process serving stack
(:mod:`repro.serving`) across worker processes without multiplying the
model memory footprint::

    callers ──► ClusterService (asyncio gateway)
                  │ route by name, canary split, admission control
                  ├──► shard 0 ─┐  PredictionEngine over name@vN subset
                  ├──► shard 1 ─┤
                  └──► shard N ─┘
                        │ numpy.memmap (read-only, pages shared)
                        ▼
                  ModelStore on disk (raw blocks + sha256 manifest)

- :mod:`repro.cluster.store` — registry artifacts exported once into a
  flat block layout every shard memmaps (one physical copy).
- :mod:`repro.cluster.protocol` — length-prefixed zero-copy frames
  between gateway and shards.
- :mod:`repro.cluster.shard` — the worker process entry point.
- :mod:`repro.cluster.gateway` — the asyncio gateway and its sync
  façade, :class:`ClusterService`.
- :mod:`repro.cluster.metrics` — per-shard / per-version telemetry and
  the text report.
- :mod:`repro.cluster.net` — the TCP / Unix-domain
  :class:`ClusterListener` in front of the gateway, plus the blocking
  :class:`ClusterClient` and :class:`AsyncClusterClient` libraries.
"""

from repro.cluster.gateway import ClusterConfig, ClusterService
from repro.cluster.metrics import ClusterMetrics, format_cluster_report
from repro.cluster.net import (
    AsyncClusterClient,
    ClusterClient,
    ClusterListener,
    parse_address,
)
from repro.cluster.protocol import ProtocolError
from repro.cluster.shard import shard_main
from repro.cluster.store import (
    ModelStore,
    export_model_store,
    process_pss_bytes,
)

__all__ = [
    "AsyncClusterClient",
    "ClusterClient",
    "ClusterConfig",
    "ClusterListener",
    "ClusterMetrics",
    "ClusterService",
    "ModelStore",
    "ProtocolError",
    "export_model_store",
    "format_cluster_report",
    "parse_address",
    "process_pss_bytes",
    "shard_main",
]
