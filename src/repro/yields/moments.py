"""Raw per-state moment/yield estimates from a fitted model.

This is the sampling half of the yield service: push ``n`` process
samples through the fitted performance models *per state* and record
each state's pass count and metric moments, together with the sampling
variance of every estimate. The streams are deliberately independent
and deterministic per state — state k always draws from
``default_rng([seed, k])`` — so the same (seed, state) pair reproduces
bit-identically whether it is evaluated in-process, in a CLI run, or
inside a cluster shard. That determinism is what lets the chaos tests
assert a hot-swapped model changes the served yield *atomically*: every
legitimate answer is exactly one version's vector, never a blend.

The raw estimates here are exactly the "independent per-state
estimator" the benchmark compares against; ``repro.yields.shrinkage``
turns them into the correlation-shared estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.applications.yield_estimation import Specification
from repro.basis.dictionary import BasisDictionary
from repro.core.base import MultiStateRegressor
from repro.errors import NumericalError
from repro.utils.validation import check_integer

__all__ = [
    "RawStateEstimates",
    "model_correlation",
    "sample_state_estimates",
    "state_sample_rng",
]


def state_sample_rng(seed: int, state: int) -> np.random.Generator:
    """The deterministic per-state stream: ``default_rng([seed, state])``."""
    return np.random.default_rng([int(seed), int(state)])


def model_correlation(
    models: Mapping[str, MultiStateRegressor]
) -> Optional[np.ndarray]:
    """The learned K × K correlation carried by the models, if any.

    Checks the frozen-artifact attribute (``correlation_``) first, then
    a fitted C-BMF estimator's prior. When several metrics carry one
    (they share the knob geometry, so the matrices are near-identical
    up to fit noise), the first by sorted metric name wins — a
    deterministic choice. Returns ``None`` when no model has one, which
    downstream code treats as "no sharing: report raw estimates".
    """
    for _, model in sorted(models.items()):
        correlation = getattr(model, "correlation_", None)
        if correlation is None:
            prior = getattr(model, "prior_", None)
            correlation = getattr(prior, "correlation", None)
        if correlation is not None:
            return np.asarray(correlation, dtype=float)
    return None


@dataclass(frozen=True)
class RawStateEstimates:
    """Per-state sampling estimates at a fixed budget.

    Attributes
    ----------
    successes:
        Spec-pass counts per state (length K).
    n_samples:
        The per-state sample budget n.
    yields:
        Raw pass fractions ``successes / n``.
    yield_variances:
        Strictly-positive sampling variances of the yields
        (Beta-posterior smoothed; see ``binomial_moments``).
    means, stds:
        metric name → per-state sample mean / std of the predicted
        metric (length K each).
    mean_variances:
        metric name → sampling variance ``s²/n`` of each state's mean.
    seed:
        The base seed of the per-state streams.
    """

    successes: np.ndarray
    n_samples: int
    yields: np.ndarray
    yield_variances: np.ndarray
    means: Dict[str, np.ndarray]
    stds: Dict[str, np.ndarray]
    mean_variances: Dict[str, np.ndarray]
    seed: int


def sample_state_estimates(
    models: Mapping[str, MultiStateRegressor],
    basis: BasisDictionary,
    specs: Sequence[Specification],
    n_samples: int = 400,
    seed: int = 0,
    states: Optional[Sequence[int]] = None,
) -> RawStateEstimates:
    """Monte-Carlo per-state yield and moment estimates.

    Draws ``n_samples`` fresh process samples *per state* from that
    state's deterministic stream, expands them through ``basis`` once,
    and evaluates every metric model on them. Non-finite predictions
    raise :class:`~repro.errors.NumericalError` naming the metric and
    state. ``states`` restricts evaluation to a subset (estimates for
    other states are NaN / zero-count) — shrinkage requires the full
    fleet, so most callers leave it ``None``.
    """
    if not models:
        raise ValueError("at least one metric model is required")
    if not specs:
        raise ValueError("at least one specification is required")
    for spec in specs:
        if spec.metric not in models:
            raise KeyError(
                f"no model for metric {spec.metric!r}; have "
                f"{sorted(models)}"
            )
    n_samples = check_integer(n_samples, "n_samples", minimum=2)
    counts = {model.n_states for model in models.values()}
    if len(counts) != 1:
        raise ValueError(
            f"models disagree on the state count: {sorted(counts)}"
        )
    n_states = counts.pop()
    if states is None:
        state_list = list(range(n_states))
    else:
        state_list = [int(s) for s in states]
        for s in state_list:
            if not 0 <= s < n_states:
                raise IndexError(
                    f"state {s} out of range 0..{n_states - 1}"
                )

    metrics = sorted(models)
    successes = np.zeros(n_states)
    means = {m: np.full(n_states, np.nan) for m in metrics}
    stds = {m: np.full(n_states, np.nan) for m in metrics}
    mean_variances = {m: np.full(n_states, np.nan) for m in metrics}

    for state in state_list:
        rng = state_sample_rng(seed, state)
        x = rng.standard_normal((n_samples, basis.n_variables))
        design = basis.expand(x)
        ok = np.ones(n_samples, dtype=bool)
        predictions: Dict[str, np.ndarray] = {}
        for metric in metrics:
            values = models[metric].predict(design, state)
            if not np.all(np.isfinite(values)):
                n_bad = int(np.sum(~np.isfinite(values)))
                raise NumericalError(
                    f"model for metric {metric!r} produced {n_bad} "
                    f"non-finite prediction(s) at state {state}"
                )
            predictions[metric] = values
            means[metric][state] = float(values.mean())
            spread = float(values.std(ddof=1))
            stds[metric][state] = spread
            mean_variances[metric][state] = spread**2 / n_samples
        for spec in specs:
            ok &= spec.passes(predictions[spec.metric])
        successes[state] = float(ok.sum())

    from repro.yields.shrinkage import binomial_moments

    yields, yield_variances = binomial_moments(successes, n_samples)
    if states is not None:
        skipped = np.ones(n_states, dtype=bool)
        skipped[state_list] = False
        yields[skipped] = np.nan
        yield_variances[skipped] = np.nan
    return RawStateEstimates(
        successes=successes,
        n_samples=n_samples,
        yields=yields,
        yield_variances=yield_variances,
        means=means,
        stds=stds,
        mean_variances=mean_variances,
        seed=int(seed),
    )
