"""Correlation-shared yield and moment estimation (the sign-off workload).

The paper's economic argument is that once a C-BMF model is fitted,
million-sample yield analysis is nearly free. This package is that
workload, with one refinement borrowed from multiple-population moment
estimation: the learned K × K inter-state correlation ``R`` is reused a
second time to *shrink* the per-state Monte-Carlo estimates toward
their correlation-weighted fleet estimate, tightening every state's
yield number at a fixed sample budget. See ``shrinkage`` for the math,
``moments`` for the deterministic per-state sampling, ``report`` for
the shared entry point behind the CLI, the cluster endpoint, and the
benchmark.
"""

from repro.yields.moments import (
    RawStateEstimates,
    model_correlation,
    sample_state_estimates,
    state_sample_rng,
)
from repro.yields.report import (
    MetricMoments,
    YieldReport,
    compute_yield_report,
    format_yield_report,
    report_from_dict,
    report_to_dict,
)
from repro.yields.shrinkage import (
    ShrinkageResult,
    binomial_moments,
    correlation_shrink,
    independent_intervals,
)

__all__ = [
    "MetricMoments",
    "RawStateEstimates",
    "ShrinkageResult",
    "YieldReport",
    "binomial_moments",
    "compute_yield_report",
    "correlation_shrink",
    "format_yield_report",
    "independent_intervals",
    "model_correlation",
    "report_from_dict",
    "report_to_dict",
    "sample_state_estimates",
    "state_sample_rng",
]
