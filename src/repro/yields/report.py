"""The yield report: raw + correlation-shared estimates per state.

One entry point — :func:`compute_yield_report` — shared by the CLI
(``python -m repro yield-report``), the cluster's yield endpoint, and
the benchmark. It samples every state at an equal budget, shrinks the
per-state yields (and per-metric means) toward their correlation-
weighted fleet estimates when the models carry a learned ``R``, and
packages point estimates with per-state confidence intervals. The
report round-trips through plain JSON (:func:`report_to_dict` /
:func:`report_from_dict`) so a shard can answer it inside a frame
header without any binary payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.applications.yield_estimation import Specification
from repro.basis.dictionary import BasisDictionary
from repro.core.base import MultiStateRegressor
from repro.yields.moments import (
    RawStateEstimates,
    model_correlation,
    sample_state_estimates,
)
from repro.yields.shrinkage import (
    ShrinkageResult,
    correlation_shrink,
    independent_intervals,
)

__all__ = [
    "MetricMoments",
    "YieldReport",
    "compute_yield_report",
    "format_yield_report",
    "report_from_dict",
    "report_to_dict",
]


@dataclass(frozen=True)
class MetricMoments:
    """Per-state mean/σ of one metric, with the mean optionally shrunk."""

    metric: str
    mean_raw: np.ndarray
    mean_shrunk: np.ndarray
    mean_ci_lower: np.ndarray
    mean_ci_upper: np.ndarray
    std: np.ndarray


@dataclass(frozen=True)
class YieldReport:
    """Fleet yield/moment report at one sample budget.

    ``correlation_shared`` records whether a learned K × K correlation
    was available — when ``False`` the "shrunk" columns equal the raw
    ones and the CIs are plain normal-theory intervals.
    """

    specs: List[Specification]
    n_states: int
    n_samples: int
    seed: int
    confidence: float
    correlation_shared: bool
    yield_raw: np.ndarray
    yield_shrunk: np.ndarray
    yield_ci_lower: np.ndarray
    yield_ci_upper: np.ndarray
    fleet_yield: float
    tau2: float
    moments: Dict[str, MetricMoments] = field(default_factory=dict)

    @property
    def ci_width(self) -> np.ndarray:
        """Per-state CI width — the quantity yield-aware acquisition shrinks."""
        return self.yield_ci_upper - self.yield_ci_lower


def _shrink_or_fallback(
    raw: np.ndarray,
    variances: np.ndarray,
    correlation: Optional[np.ndarray],
    confidence: float,
    clip,
) -> ShrinkageResult:
    if correlation is None:
        return independent_intervals(
            raw, variances, confidence=confidence, clip=clip
        )
    return correlation_shrink(
        raw, variances, correlation, confidence=confidence, clip=clip
    )


def compute_yield_report(
    models: Mapping[str, MultiStateRegressor],
    basis: BasisDictionary,
    specs: Sequence[Specification],
    n_samples: int = 400,
    seed: int = 0,
    confidence: float = 0.95,
    estimates: Optional[RawStateEstimates] = None,
) -> YieldReport:
    """Estimate per-state yield (and metric moments) with shrinkage.

    ``estimates`` lets a caller that already sampled (the benchmark,
    which reuses one sampling pass for both estimators) skip the
    Monte-Carlo step; otherwise every state is sampled at the given
    budget from its deterministic stream.
    """
    specs = list(specs)
    if estimates is None:
        estimates = sample_state_estimates(
            models, basis, specs, n_samples=n_samples, seed=seed
        )
    correlation = model_correlation(models)
    yield_result = _shrink_or_fallback(
        estimates.yields,
        estimates.yield_variances,
        correlation,
        confidence,
        clip=(0.0, 1.0),
    )
    moments: Dict[str, MetricMoments] = {}
    for metric in sorted(estimates.means):
        mean_result = _shrink_or_fallback(
            estimates.means[metric],
            np.maximum(estimates.mean_variances[metric], 1e-30),
            correlation,
            confidence,
            clip=None,
        )
        moments[metric] = MetricMoments(
            metric=metric,
            mean_raw=mean_result.raw,
            mean_shrunk=mean_result.shrunk,
            mean_ci_lower=mean_result.ci_lower,
            mean_ci_upper=mean_result.ci_upper,
            std=estimates.stds[metric],
        )
    return YieldReport(
        specs=specs,
        n_states=int(estimates.yields.shape[0]),
        n_samples=int(estimates.n_samples),
        seed=int(estimates.seed),
        confidence=float(confidence),
        correlation_shared=correlation is not None,
        yield_raw=yield_result.raw,
        yield_shrunk=yield_result.shrunk,
        yield_ci_lower=yield_result.ci_lower,
        yield_ci_upper=yield_result.ci_upper,
        fleet_yield=float(yield_result.fleet_mean),
        tau2=float(yield_result.tau2),
        moments=moments,
    )


# ----------------------------------------------------------------------
def report_to_dict(report: YieldReport) -> dict:
    """JSON-safe dict (plain floats/lists only) for frames and files."""
    return {
        "specs": [
            {"metric": s.metric, "bound": s.bound, "kind": s.kind}
            for s in report.specs
        ],
        "n_states": report.n_states,
        "n_samples": report.n_samples,
        "seed": report.seed,
        "confidence": report.confidence,
        "correlation_shared": report.correlation_shared,
        "yield_raw": [float(v) for v in report.yield_raw],
        "yield_shrunk": [float(v) for v in report.yield_shrunk],
        "yield_ci_lower": [float(v) for v in report.yield_ci_lower],
        "yield_ci_upper": [float(v) for v in report.yield_ci_upper],
        "fleet_yield": report.fleet_yield,
        "tau2": report.tau2,
        "moments": {
            metric: {
                "mean_raw": [float(v) for v in mm.mean_raw],
                "mean_shrunk": [float(v) for v in mm.mean_shrunk],
                "mean_ci_lower": [float(v) for v in mm.mean_ci_lower],
                "mean_ci_upper": [float(v) for v in mm.mean_ci_upper],
                "std": [float(v) for v in mm.std],
            }
            for metric, mm in report.moments.items()
        },
    }


def report_from_dict(payload: Mapping) -> YieldReport:
    """Rebuild a :class:`YieldReport` from :func:`report_to_dict` output."""
    moments = {
        metric: MetricMoments(
            metric=metric,
            mean_raw=np.asarray(mm["mean_raw"], dtype=float),
            mean_shrunk=np.asarray(mm["mean_shrunk"], dtype=float),
            mean_ci_lower=np.asarray(mm["mean_ci_lower"], dtype=float),
            mean_ci_upper=np.asarray(mm["mean_ci_upper"], dtype=float),
            std=np.asarray(mm["std"], dtype=float),
        )
        for metric, mm in payload.get("moments", {}).items()
    }
    return YieldReport(
        specs=[
            Specification(
                metric=s["metric"], bound=float(s["bound"]), kind=s["kind"]
            )
            for s in payload["specs"]
        ],
        n_states=int(payload["n_states"]),
        n_samples=int(payload["n_samples"]),
        seed=int(payload["seed"]),
        confidence=float(payload["confidence"]),
        correlation_shared=bool(payload["correlation_shared"]),
        yield_raw=np.asarray(payload["yield_raw"], dtype=float),
        yield_shrunk=np.asarray(payload["yield_shrunk"], dtype=float),
        yield_ci_lower=np.asarray(payload["yield_ci_lower"], dtype=float),
        yield_ci_upper=np.asarray(payload["yield_ci_upper"], dtype=float),
        fleet_yield=float(payload["fleet_yield"]),
        tau2=float(payload["tau2"]),
        moments=moments,
    )


def format_yield_report(report: YieldReport, max_rows: int = 12) -> str:
    """Human-readable table: worst states first, fleet summary on top."""
    lines = []
    spec_text = ", ".join(
        f"{s.metric}{'<=' if s.kind == 'max' else '>='}{s.bound:g}"
        for s in report.specs
    )
    sharing = (
        "correlation-shared (K×K shrinkage)"
        if report.correlation_shared
        else "independent (no learned correlation)"
    )
    lines.append(
        f"yield report: {report.n_states} states × "
        f"{report.n_samples} samples/state, specs [{spec_text}]"
    )
    lines.append(
        f"  estimator: {sharing}; fleet yield {report.fleet_yield:.4f}"
        + (
            f", tau^2 {report.tau2:.3g}"
            if report.correlation_shared
            else ""
        )
    )
    order = np.argsort(report.yield_shrunk)
    shown = order[: max(1, int(max_rows))]
    level = int(round(report.confidence * 100))
    lines.append(
        f"  worst {len(shown)} states (yield with {level}% CI):"
    )
    for k in shown:
        lines.append(
            f"    state {int(k):4d}: {report.yield_shrunk[k]:.4f} "
            f"[{report.yield_ci_lower[k]:.4f}, "
            f"{report.yield_ci_upper[k]:.4f}]  (raw "
            f"{report.yield_raw[k]:.4f})"
        )
    if len(order) > len(shown):
        lines.append(f"    … {len(order) - len(shown)} more states")
    return "\n".join(lines)
