"""Correlation-shared shrinkage of per-state estimates (MPME-style).

A tunable circuit's K states are not independent populations: the C-BMF
fit *learns* how correlated they are (the K × K matrix ``R``). Any noisy
per-state estimate — a Monte-Carlo yield, a sample mean — can therefore
borrow strength across states. We model the raw estimates as

    ŷ = y + ε,   y ~ N(μ·1, τ²·R̃),   ε ~ N(0, V = diag(v_k))

where ``v_k`` is the known sampling variance of state k's raw estimate
and ``τ²`` scales the learned correlation into a between-state prior.
The empirical-Bayes posterior (GLS mean ``μ̂``, method-of-moments
``τ̂²``) is then

    W   = (τ̂²·R̃ + V)⁻¹
    μ̂   = (1ᵀW·1)⁻¹ · 1ᵀW·ŷ
    y*  = μ̂·1 + τ̂²·R̃·W·(ŷ − μ̂·1)
    Σ*  = τ̂²·R̃ − τ̂²·R̃·W·τ̂²·R̃  (+ μ̂-estimation term)

Every solve is K × K — for the 201-point frequency sweep that is a
201 × 201 Cholesky, never anything the size of the training kernel.
States with thin sample budgets are pulled toward their
correlation-weighted neighbours; states with tight budgets barely move.
The per-state confidence interval ``y*_k ± z·√(Σ*_kk + d_k²·var(μ̂))``
includes the fleet-mean estimation uncertainty (``d = 1 − τ̂²R̃W·1``),
which is what makes nominal coverage hold when τ̂² ≈ 0 and the posterior
collapses onto the pooled mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import linalg as sla

from repro.errors import NumericalError
from repro.utils.validation import check_square, check_vector

__all__ = [
    "ShrinkageResult",
    "binomial_moments",
    "correlation_shrink",
    "independent_intervals",
]


@dataclass(frozen=True)
class ShrinkageResult:
    """Posterior summary of correlation-shared shrinkage.

    Attributes
    ----------
    raw, shrunk:
        The input estimates and their posterior means (length K).
    ci_lower, ci_upper:
        Per-state confidence interval at the requested level.
    raw_variance, posterior_variance:
        Sampling variance in, posterior variance out (length K).
    fleet_mean:
        The GLS estimate ``μ̂`` every state is shrunk toward.
    tau2:
        Method-of-moments between-state variance scale ``τ̂²``; zero
        means the raw spread is explained by sampling noise alone and
        the posterior pools completely.
    confidence:
        The nominal two-sided CI level.
    """

    raw: np.ndarray
    shrunk: np.ndarray
    ci_lower: np.ndarray
    ci_upper: np.ndarray
    raw_variance: np.ndarray
    posterior_variance: np.ndarray
    fleet_mean: float
    tau2: float
    confidence: float


def binomial_moments(
    successes: np.ndarray, n_samples: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Pass-fraction estimates and their sampling variances.

    Returns the raw fraction ``s/n`` alongside the Beta(s+1, n−s+1)
    posterior variance ``p̃(1−p̃)/(n+3)`` with ``p̃ = (s+1)/(n+2)`` —
    strictly positive even at 0 or n successes, so the shrinkage
    observation-covariance ``V`` is always invertible.
    """
    successes = np.asarray(successes, dtype=float)
    n = int(n_samples)
    if n < 1:
        raise ValueError(f"n_samples must be >= 1, got {n}")
    if np.any((successes < 0) | (successes > n)):
        raise ValueError("successes must lie in [0, n_samples]")
    raw = successes / n
    smoothed = (successes + 1.0) / (n + 2.0)
    variance = smoothed * (1.0 - smoothed) / (n + 3.0)
    return raw, variance


def _z_value(confidence: float) -> float:
    from scipy.stats import norm

    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return float(norm.ppf(0.5 + confidence / 2.0))


def independent_intervals(
    raw: np.ndarray,
    variances: np.ndarray,
    confidence: float = 0.95,
    clip: Optional[Tuple[float, float]] = None,
) -> ShrinkageResult:
    """The no-sharing fallback: raw estimates with normal-theory CIs.

    Used when a model carries no learned correlation (e.g. a per-state
    SOMP fit) — the result has the same shape as
    :func:`correlation_shrink` so downstream reporting is uniform.
    """
    raw = check_vector(raw, "raw")
    variances = check_vector(variances, "variances", length=raw.shape[0])
    if np.any(variances < 0.0):
        raise ValueError("variances must be non-negative")
    z = _z_value(confidence)
    half = z * np.sqrt(variances)
    lower, upper = raw - half, raw + half
    if clip is not None:
        lower = np.clip(lower, clip[0], clip[1])
        upper = np.clip(upper, clip[0], clip[1])
    return ShrinkageResult(
        raw=raw,
        shrunk=raw.copy(),
        ci_lower=lower,
        ci_upper=upper,
        raw_variance=variances,
        posterior_variance=variances.copy(),
        fleet_mean=float(raw.mean()),
        tau2=float("nan"),
        confidence=float(confidence),
    )


def _solve_spd(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Cholesky solve with escalating jitter; NumericalError on failure."""
    scale = float(np.mean(np.diag(matrix)))
    jitter = 0.0
    for attempt in range(4):
        try:
            factor = sla.cho_factor(
                matrix + jitter * np.eye(matrix.shape[0]),
                lower=True,
                check_finite=False,
            )
            return sla.cho_solve(factor, rhs, check_finite=False)
        except np.linalg.LinAlgError:
            jitter = max(jitter * 100.0, 1e-10 * max(scale, 1.0))
    raise NumericalError(
        f"shrinkage covariance (K={matrix.shape[0]}) is not positive "
        f"definite even with jitter {jitter:g}"
    )


def correlation_shrink(
    raw: np.ndarray,
    variances: np.ndarray,
    correlation: np.ndarray,
    confidence: float = 0.95,
    clip: Optional[Tuple[float, float]] = None,
) -> ShrinkageResult:
    """Shrink raw per-state estimates toward their correlated fleet mean.

    Parameters
    ----------
    raw:
        Per-state point estimates ``ŷ`` (length K).
    variances:
        Known sampling variance ``v_k`` of each estimate (length K,
        strictly positive — use :func:`binomial_moments` for yields).
    correlation:
        The learned K × K inter-state correlation ``R``.
    confidence:
        Two-sided CI level (default 95%).
    clip:
        Optional ``(low, high)`` to clamp the posterior mean and CI
        into — ``(0, 1)`` for yields.

    All linear algebra is K × K; nothing scales with the model size M
    or the training-sample count.
    """
    raw = check_vector(raw, "raw")
    n_states = raw.shape[0]
    variances = check_vector(variances, "variances", length=n_states)
    if np.any(variances <= 0.0):
        raise ValueError(
            "variances must be strictly positive (smooth zero-count "
            "states first, e.g. with binomial_moments)"
        )
    correlation = check_square(correlation, "correlation", size=n_states)
    r_tilde = 0.5 * (correlation + correlation.T)
    z = _z_value(confidence)

    # Method-of-moments τ̂²: the centred spread of the raw estimates in
    # excess of their sampling noise, scaled by the centred trace of R̃.
    centred = raw - raw.mean()
    excess = float(centred @ centred) - (1.0 - 1.0 / n_states) * float(
        variances.sum()
    )
    denom = float(np.trace(r_tilde)) - float(r_tilde.sum()) / n_states
    if denom > 1e-9 * n_states:
        tau2 = max(0.0, excess / denom)
        # τ̂² is itself noisy — with a highly-correlated R̃ its quadratic
        # form has few effective degrees of freedom. Using the bare point
        # estimate makes the posterior over-confident (CIs undercover),
        # so bump it by one delta-method standard deviation of τ̂²
        # (plug-in Σ̂ = τ̂²R̃ + V):  var(τ̂²) = 2·tr((C Σ̂ C)²)/denom².
        centering = np.eye(n_states) - 1.0 / n_states
        spread = centering @ (tau2 * r_tilde + np.diag(variances)) @ centering
        tau2 += np.sqrt(2.0 * float(np.sum(spread * spread.T))) / denom
    else:
        tau2 = 0.0

    prior_cov = tau2 * r_tilde
    total_cov = prior_cov + np.diag(variances)
    ones = np.ones(n_states)
    # One factorization serves all three solves: W·1, W·ŷ, W·(τ²R̃).
    solved = _solve_spd(
        total_cov, np.column_stack([ones, raw, prior_cov])
    )
    w_ones = solved[:, 0]
    w_raw = solved[:, 1]
    w_prior = solved[:, 2:]  # W · τ²R̃, shape (K, K)

    denom_mu = float(ones @ w_ones)
    if denom_mu <= 0.0 or not np.isfinite(denom_mu):
        raise NumericalError(
            f"degenerate GLS weights (1ᵀW1 = {denom_mu!r}) in shrinkage"
        )
    mu_var = 1.0 / denom_mu
    fleet_mean = mu_var * float(ones @ w_raw)

    # y* = μ̂ + τ²R̃·W·(ŷ − μ̂·1); the W-solves above reuse linearly.
    gain_residual = prior_cov @ (w_raw - fleet_mean * w_ones)
    shrunk = fleet_mean + gain_residual

    # diag(Σ*) = diag(τ²R̃) − diag(τ²R̃ · W · τ²R̃), plus the fleet-mean
    # estimation term d_k²·var(μ̂) with d = 1 − τ²R̃·W·1.
    diag_prior = np.diag(prior_cov)
    diag_quad = np.einsum("kj,jk->k", prior_cov, w_prior)
    sensitivity = ones - prior_cov @ w_ones
    posterior_variance = np.maximum(
        diag_prior - diag_quad, 0.0
    ) + sensitivity**2 * mu_var
    if not np.all(np.isfinite(posterior_variance)):
        raise NumericalError("non-finite posterior variance in shrinkage")

    half = z * np.sqrt(posterior_variance)
    lower, upper = shrunk - half, shrunk + half
    if clip is not None:
        shrunk = np.clip(shrunk, clip[0], clip[1])
        lower = np.clip(lower, clip[0], clip[1])
        upper = np.clip(upper, clip[0], clip[1])
    return ShrinkageResult(
        raw=raw,
        shrunk=shrunk,
        ci_lower=lower,
        ci_upper=upper,
        raw_variance=variances,
        posterior_variance=posterior_variance,
        fleet_mean=float(fleet_mean),
        tau2=float(tau2),
        confidence=float(confidence),
    )
