"""Input validation helpers shared by the public APIs.

All estimators and simulators in this package validate their inputs early and
raise ``ValueError``/``TypeError`` with messages that name the offending
argument, so that misuse fails at the call boundary instead of deep inside a
linear-algebra routine.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "check_vector",
    "check_matrix",
    "check_square",
    "check_positive",
    "check_in_range",
    "check_probability",
    "check_integer",
    "check_same_length",
]


def check_vector(
    value,
    name: str,
    *,
    length: Optional[int] = None,
    dtype=float,
) -> np.ndarray:
    """Coerce ``value`` to a 1-D ndarray, optionally enforcing its length."""
    array = np.asarray(value, dtype=dtype)
    if array.ndim != 1:
        raise ValueError(
            f"{name} must be one-dimensional, got shape {array.shape}"
        )
    if length is not None and array.shape[0] != length:
        raise ValueError(
            f"{name} must have length {length}, got {array.shape[0]}"
        )
    if dtype is float and not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite values")
    return array


def check_matrix(
    value,
    name: str,
    *,
    shape: Optional[Tuple[Optional[int], Optional[int]]] = None,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``value`` to a 2-D float ndarray, optionally enforcing shape.

    ``shape`` entries may be ``None`` to leave a dimension unconstrained.
    """
    array = np.asarray(value, dtype=float)
    if array.ndim != 2:
        raise ValueError(
            f"{name} must be two-dimensional, got shape {array.shape}"
        )
    if not allow_empty and array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if shape is not None:
        rows, cols = shape
        if rows is not None and array.shape[0] != rows:
            raise ValueError(
                f"{name} must have {rows} rows, got {array.shape[0]}"
            )
        if cols is not None and array.shape[1] != cols:
            raise ValueError(
                f"{name} must have {cols} columns, got {array.shape[1]}"
            )
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite values")
    return array


def check_square(value, name: str, *, size: Optional[int] = None) -> np.ndarray:
    """Coerce ``value`` to a square 2-D ndarray of optional size."""
    array = check_matrix(value, name)
    if array.shape[0] != array.shape[1]:
        raise ValueError(f"{name} must be square, got shape {array.shape}")
    if size is not None and array.shape[0] != size:
        raise ValueError(
            f"{name} must be {size}x{size}, got {array.shape[0]}x{array.shape[1]}"
        )
    return array


def check_positive(value, name: str, *, strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative if not strict)."""
    scalar = float(value)
    if not np.isfinite(scalar):
        raise ValueError(f"{name} must be finite, got {scalar}")
    if strict and scalar <= 0.0:
        raise ValueError(f"{name} must be > 0, got {scalar}")
    if not strict and scalar < 0.0:
        raise ValueError(f"{name} must be >= 0, got {scalar}")
    return scalar


def check_in_range(
    value, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Validate that a scalar lies in ``[low, high]`` (or ``(low, high)``)."""
    scalar = float(value)
    if inclusive:
        if not (low <= scalar <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {scalar}")
    else:
        if not (low < scalar < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {scalar}")
    return scalar


def check_probability(value, name: str) -> float:
    """Validate a scalar probability in [0, 1]."""
    return check_in_range(value, name, 0.0, 1.0)


def check_integer(value, name: str, *, minimum: Optional[int] = None) -> int:
    """Validate an integer, optionally with a lower bound."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    scalar = int(value)
    if minimum is not None and scalar < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {scalar}")
    return scalar


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Validate that two sequences have identical lengths."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )
