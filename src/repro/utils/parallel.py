"""Deterministic process-pool mapping for embarrassingly parallel fits.

The fit path contains several independent-cell grids — the S-OMP
cross-validation cells (fold × r0 × σ0), the repeated-experiment seeds and
the error-vs-samples sweep points. ``parallel_map`` runs such cells on a
spawn-based process pool while guaranteeing **bit-identical results for
any worker count**:

* cells are pure functions of their inputs (no shared mutable state);
* results are returned in submission order, never completion order;
* randomness is derived *before* dispatch (:func:`derive_seeds` gives
  order-stable child seeds from one parent seed), so scheduling cannot
  perturb a single random draw.

Workers default to serial (``workers=1`` runs inline in this process, no
pool, no pickling) and are overridden globally with the
``REPRO_MAX_WORKERS`` environment variable or per call with
``max_workers``. The spawn start method is used everywhere — fork-unsafe
BLAS state can never leak into workers, and behavior matches across
Linux/macOS/Windows.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, TypeVar

import numpy as np

__all__ = ["parallel_map", "resolve_workers", "derive_seeds"]

T = TypeVar("T")
R = TypeVar("R")

#: Worker-local shared payload installed by the pool initializer.
_SHARED: Any = None


def resolve_workers(
    max_workers: Optional[int] = None, *, n_items: Optional[int] = None
) -> int:
    """Resolve the worker count: explicit > ``REPRO_MAX_WORKERS`` env > 1.

    The result is clamped to ``n_items`` when given — a pool larger than
    the task list only burns interpreter start-ups.
    """
    if max_workers is None:
        env = os.environ.get("REPRO_MAX_WORKERS", "").strip()
        max_workers = int(env) if env else 1
    max_workers = int(max_workers)
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if n_items is not None:
        max_workers = max(1, min(max_workers, n_items))
    return max_workers


def derive_seeds(seed, count: int) -> List[np.random.SeedSequence]:
    """``count`` independent child seed sequences from one parent seed.

    Children are a pure function of ``(seed, index)`` — identical no
    matter how many workers later consume them, which is what keeps
    parallel stochastic cells bit-identical to their serial run.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        parent = seed.bit_generator.seed_seq
    elif isinstance(seed, np.random.SeedSequence):
        parent = seed
    else:
        parent = np.random.SeedSequence(seed)
    return list(parent.spawn(count))


def _init_worker(shared: Any) -> None:
    """Pool initializer: stash the shared payload once per worker."""
    global _SHARED
    _SHARED = shared


def _invoke(fn: Callable, item: Any, with_shared: bool) -> Any:
    """Run one cell in a worker, forwarding the worker-local payload."""
    if with_shared:
        return fn(item, _SHARED)
    return fn(item)


def parallel_map(
    fn: Callable[..., R],
    items: Sequence[T],
    *,
    shared: Any = None,
    max_workers: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally on a spawn process pool.

    Parameters
    ----------
    fn:
        A **module-level** function (picklable under spawn). Called as
        ``fn(item)`` — or ``fn(item, shared)`` when ``shared`` is given.
    items:
        The independent cells; results come back in this exact order.
    shared:
        Optional read-only payload shipped to each worker once (via the
        pool initializer) instead of once per task — pass the big arrays
        here, keep ``items`` small.
    max_workers:
        Worker count; ``None`` defers to ``REPRO_MAX_WORKERS`` (default
        1 = run serially inline, no subprocesses at all).
    """
    items = list(items)
    if not items:
        return []
    workers = resolve_workers(max_workers, n_items=len(items))
    with_shared = shared is not None
    if workers == 1:
        if with_shared:
            return [fn(item, shared) for item in items]
        return [fn(item) for item in items]

    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    context = mp.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(shared,),
    ) as executor:
        futures = [
            executor.submit(_invoke, fn, item, with_shared)
            for item in items
        ]
        return [future.result() for future in futures]
