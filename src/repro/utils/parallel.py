"""Deterministic process-pool mapping for embarrassingly parallel fits.

The fit path contains several independent-cell grids — the S-OMP
cross-validation cells (fold × r0 × σ0), the repeated-experiment seeds and
the error-vs-samples sweep points. ``parallel_map`` runs such cells on a
spawn-based process pool while guaranteeing **bit-identical results for
any worker count**:

* cells are pure functions of their inputs (no shared mutable state);
* results are returned in submission order, never completion order;
* randomness is derived *before* dispatch (:func:`derive_seeds` gives
  order-stable child seeds from one parent seed), so scheduling cannot
  perturb a single random draw.

Workers default to serial (``workers=1`` runs inline in this process, no
pool, no pickling) and are overridden globally with the
``REPRO_MAX_WORKERS`` environment variable or per call with
``max_workers``. The spawn start method is used everywhere — fork-unsafe
BLAS state can never leak into workers, and behavior matches across
Linux/macOS/Windows.

Fault tolerance: a crashed worker (segfault, OOM kill, ``os._exit``)
breaks the pool, but not the map — every task the pool failed to answer
is re-run inline in the parent, so the result list is still complete and
bit-identical (cells are pure functions). ``task_timeout`` (or the
``REPRO_TASK_TIMEOUT`` env var) additionally bounds how long any single
task may run; on expiry the pool's workers are terminated and the
unfinished tasks re-run inline. Chaos tests arm a one-shot worker crash
through the ``REPRO_FAULT_WORKER_CRASH`` token file (see
:class:`repro.faults.worker_crash_flag`).
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, TypeVar

import numpy as np

__all__ = [
    "parallel_map",
    "resolve_workers",
    "resolve_task_timeout",
    "derive_seeds",
]

T = TypeVar("T")
R = TypeVar("R")

#: Worker-local shared payload installed by the pool initializer.
_SHARED: Any = None


def resolve_workers(
    max_workers: Optional[int] = None, *, n_items: Optional[int] = None
) -> int:
    """Resolve the worker count: explicit > ``REPRO_MAX_WORKERS`` env > 1.

    The result is clamped to ``n_items`` when given — a pool larger than
    the task list only burns interpreter start-ups.
    """
    if max_workers is None:
        env = os.environ.get("REPRO_MAX_WORKERS", "").strip()
        max_workers = int(env) if env else 1
    max_workers = int(max_workers)
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if n_items is not None:
        max_workers = max(1, min(max_workers, n_items))
    return max_workers


def resolve_task_timeout(
    task_timeout: Optional[float] = None,
) -> Optional[float]:
    """Resolve the per-task timeout: explicit > ``REPRO_TASK_TIMEOUT`` env.

    ``None`` (the default everywhere) disables the timeout.
    """
    if task_timeout is None:
        env = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
        task_timeout = float(env) if env else None
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError(
            f"task_timeout must be > 0, got {task_timeout}"
        )
    return task_timeout


def derive_seeds(seed, count: int) -> List[np.random.SeedSequence]:
    """``count`` independent child seed sequences from one parent seed.

    Children are a pure function of ``(seed, index)`` — identical no
    matter how many workers later consume them, which is what keeps
    parallel stochastic cells bit-identical to their serial run.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        parent = seed.bit_generator.seed_seq
    elif isinstance(seed, np.random.SeedSequence):
        parent = seed
    else:
        parent = np.random.SeedSequence(seed)
    return list(parent.spawn(count))


def _init_worker(shared: Any) -> None:
    """Pool initializer: stash the shared payload once per worker."""
    global _SHARED
    _SHARED = shared


def _consume_crash_token() -> None:
    """Die mid-task if the chaos-test crash token names this process.

    ``REPRO_FAULT_WORKER_CRASH`` (exported by
    :class:`repro.faults.worker_crash_flag`, inherited by spawn workers)
    points at a token file; the first task to remove it hard-exits its
    worker. Exactly one task dies per armed token, and the atomic
    ``os.remove`` guarantees no double fire across racing workers.
    """
    token = os.environ.get("REPRO_FAULT_WORKER_CRASH", "")
    if not token:
        return
    try:
        os.remove(token)
    except OSError:
        return  # already consumed by another task
    os._exit(1)


def _invoke(fn: Callable, item: Any, with_shared: bool) -> Any:
    """Run one cell in a worker, forwarding the worker-local payload."""
    _consume_crash_token()
    if with_shared:
        return fn(item, _SHARED)
    return fn(item)


def _terminate_workers(executor) -> None:
    """Hard-stop every pool process (stalled-task recovery path)."""
    for process in list(getattr(executor, "_processes", {}).values()):
        try:
            process.terminate()
        except OSError:  # pragma: no cover - already dead
            pass


def parallel_map(
    fn: Callable[..., R],
    items: Sequence[T],
    *,
    shared: Any = None,
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally on a spawn process pool.

    Parameters
    ----------
    fn:
        A **module-level** function (picklable under spawn). Called as
        ``fn(item)`` — or ``fn(item, shared)`` when ``shared`` is given.
    items:
        The independent cells; results come back in this exact order.
    shared:
        Optional read-only payload shipped to each worker once (via the
        pool initializer) instead of once per task — pass the big arrays
        here, keep ``items`` small.
    max_workers:
        Worker count; ``None`` defers to ``REPRO_MAX_WORKERS`` (default
        1 = run serially inline, no subprocesses at all).
    task_timeout:
        Per-task wall-clock bound in seconds; ``None`` defers to
        ``REPRO_TASK_TIMEOUT`` (default: no bound). A task that exceeds
        it has the pool's workers terminated and is re-run inline.

    Tasks a worker crash (or the timeout) left unanswered are recomputed
    inline in the parent — cells are pure functions, so the completed
    result list is bit-identical to an undisturbed run, in submission
    order. Exceptions raised by ``fn`` itself still propagate.
    """
    items = list(items)
    if not items:
        return []
    workers = resolve_workers(max_workers, n_items=len(items))
    task_timeout = resolve_task_timeout(task_timeout)
    with_shared = shared is not None

    def run_inline(item: T) -> R:
        return fn(item, shared) if with_shared else fn(item)

    if workers == 1:
        return [run_inline(item) for item in items]

    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FuturesTimeout
    from concurrent.futures.process import BrokenProcessPool

    context = mp.get_context("spawn")
    executor = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(shared,),
    )
    results: List[Any] = []
    failed: List[int] = []
    killed = False
    try:
        futures = [
            executor.submit(_invoke, fn, item, with_shared)
            for item in items
        ]
        for index, future in enumerate(futures):
            try:
                results.append(future.result(timeout=task_timeout))
            except BrokenProcessPool:
                # A worker died; this future (and possibly every pending
                # one — each lands here in turn) is recomputed inline.
                results.append(None)
                failed.append(index)
            except FuturesTimeout:
                # A stalled worker never returns. Kill the pool — the
                # remaining futures fail fast as BrokenProcessPool — and
                # recompute inline.
                killed = True
                _terminate_workers(executor)
                results.append(None)
                failed.append(index)
    finally:
        executor.shutdown(wait=not killed, cancel_futures=True)
    for index in failed:
        results[index] = run_inline(items[index])
    return results
