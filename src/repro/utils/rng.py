"""Random-number-generator plumbing.

Every stochastic entry point in the package accepts either an integer seed,
``None`` (fresh entropy) or an existing ``numpy.random.Generator``. These
helpers normalize that and spawn statistically independent child generators
for parallel structures (e.g. one generator per knob state).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["as_generator", "spawn_generators", "SeedLike"]

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize ``seed`` into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        "seed must be None, an int, or a numpy Generator, "
        f"got {type(seed).__name__}"
    )


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent child generators from one seed.

    Uses ``SeedSequence.spawn`` semantics so children are independent no
    matter how many are requested.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    parent = as_generator(seed)
    return [
        np.random.default_rng(child)
        for child in parent.bit_generator.seed_seq.spawn(count)
    ]
