"""Stable dense linear algebra used throughout the Bayesian machinery.

Everything here operates on symmetric positive (semi-)definite matrices: the
prior covariance blocks ``λ_m R``, the dual-space Gram matrix
``C = σ0² I + D A Dᵀ`` and the posterior covariance blocks. Cholesky
factorizations are used wherever possible; a small diagonal jitter is added
automatically when a matrix is only semi-definite due to round-off.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import linalg as sla

from repro.errors import NumericalError

__all__ = [
    "cholesky_factor",
    "cholesky_solve",
    "solve_psd",
    "log_det_psd",
    "inv_psd",
    "inv_from_cholesky",
    "nearest_psd",
    "is_psd",
    "woodbury_inverse_apply",
    "quadratic_form",
    "symmetrize",
]

#: Relative jitter ladder tried when a Cholesky factorization fails.
_JITTERS = (0.0, 1e-12, 1e-10, 1e-8, 1e-6)


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(A + Aᵀ)/2`` of a square matrix."""
    return 0.5 * (matrix + matrix.T)


def cholesky_factor(matrix: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of a PSD matrix, adding jitter if needed.

    The jitter is relative — each rung of the ladder scales with the
    mean diagonal of the matrix, so ill-scaled but fixable matrices are
    repaired regardless of their magnitude. Raises
    :class:`repro.errors.NumericalError` (a ``np.linalg.LinAlgError``
    subclass, so existing handlers keep working) if the matrix stays
    indefinite through the whole ladder.
    """
    matrix = symmetrize(np.asarray(matrix, dtype=float))
    scale = max(float(np.trace(matrix)) / max(matrix.shape[0], 1), 1e-300)
    for jitter in _JITTERS:
        try:
            return np.linalg.cholesky(
                matrix + (jitter * scale) * np.eye(matrix.shape[0])
            )
        except np.linalg.LinAlgError:
            continue
    raise NumericalError(
        "matrix is not positive definite even after jitter "
        f"(largest tried: {_JITTERS[-1]:.0e} relative to the mean "
        f"diagonal {scale:.3e})"
    )


def cholesky_solve(factor: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L Lᵀ x = rhs`` given the lower Cholesky factor ``L``."""
    return sla.cho_solve((factor, True), rhs, check_finite=False)


def solve_psd(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = rhs`` for PSD ``A`` via Cholesky with jitter fallback."""
    return cholesky_solve(cholesky_factor(matrix), rhs)


def inv_psd(matrix: np.ndarray) -> np.ndarray:
    """Inverse of a PSD matrix via Cholesky."""
    factor = cholesky_factor(matrix)
    identity = np.eye(matrix.shape[0])
    return cholesky_solve(factor, identity)


def inv_from_cholesky(factor: np.ndarray) -> np.ndarray:
    """Full inverse ``(L Lᵀ)⁻¹`` from a lower Cholesky factor.

    Uses LAPACK ``dpotri`` — roughly half the work of the equivalent
    ``cho_solve(factor, eye(n))`` and no n×n identity to materialize.
    """
    inverse, info = sla.lapack.dpotri(factor, lower=1)
    if info != 0:
        raise NumericalError(f"dpotri failed with info={info}")
    # dpotri fills only the lower triangle; mirror it.
    upper = np.triu_indices_from(inverse, k=1)
    inverse[upper] = inverse.T[upper]
    return inverse


def log_det_psd(matrix: np.ndarray) -> float:
    """Log-determinant of a PSD matrix via Cholesky."""
    factor = cholesky_factor(matrix)
    return 2.0 * float(np.sum(np.log(np.diag(factor))))


def is_psd(matrix: np.ndarray, *, tol: float = 1e-10) -> bool:
    """True when all eigenvalues of the symmetrized matrix are ≥ ``-tol``."""
    eigenvalues = np.linalg.eigvalsh(symmetrize(np.asarray(matrix, float)))
    scale = max(abs(eigenvalues).max(), 1.0)
    return bool(eigenvalues.min() >= -tol * scale)


def nearest_psd(matrix: np.ndarray, *, floor: float = 0.0) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone by eigenvalue clipping.

    ``floor`` optionally lower-bounds the eigenvalues (useful to keep the
    learned correlation matrix ``R`` strictly positive definite during EM).
    """
    sym = symmetrize(np.asarray(matrix, dtype=float))
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    clipped = np.maximum(eigenvalues, floor)
    return symmetrize((eigenvectors * clipped) @ eigenvectors.T)


def woodbury_inverse_apply(
    noise_var: float,
    design: np.ndarray,
    prior_chol: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Apply ``(σ² I + D A Dᵀ)⁻¹`` to ``rhs`` without forming the n×n inverse.

    ``design`` is the n×p matrix ``D`` and ``prior_chol`` the lower Cholesky
    factor of the p×p prior covariance ``A``. Uses the Woodbury identity

    ``(σ²I + DADᵀ)⁻¹ = σ⁻²I − σ⁻²DL (σ²I + LᵀDᵀDL)⁻¹ LᵀDᵀ σ⁻²``

    with ``A = L Lᵀ``. Efficient when p < n; for p ≥ n the caller should form
    the n×n matrix directly (the dual-space path used by the posterior).
    """
    if noise_var <= 0.0:
        raise ValueError(f"noise_var must be > 0, got {noise_var}")
    scaled = design @ prior_chol  # n × p
    p = scaled.shape[1]
    inner = noise_var * np.eye(p) + scaled.T @ scaled
    correction = scaled @ solve_psd(inner, scaled.T @ rhs)
    return (rhs - correction) / noise_var


def quadratic_form(matrix: np.ndarray, vector: np.ndarray) -> float:
    """``vᵀ A⁻¹ v`` for PSD ``A`` computed through a Cholesky solve."""
    factor = cholesky_factor(matrix)
    half = sla.solve_triangular(
        factor, vector, lower=True, check_finite=False
    )
    return float(half @ half)


def split_blocks(matrix: np.ndarray, block: int) -> Tuple[np.ndarray, ...]:
    """Split a (q·block)×(q·block) matrix into its q diagonal blocks."""
    size = matrix.shape[0]
    if size % block != 0:
        raise ValueError(
            f"matrix size {size} is not a multiple of block size {block}"
        )
    count = size // block
    return tuple(
        matrix[i * block : (i + 1) * block, i * block : (i + 1) * block]
        for i in range(count)
    )
