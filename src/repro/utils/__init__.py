"""Shared low-level utilities: numerical linear algebra, validation, RNG."""

from repro.utils.linalg import (
    cholesky_solve,
    log_det_psd,
    nearest_psd,
    solve_psd,
    woodbury_inverse_apply,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_matrix,
    check_positive,
    check_square,
    check_vector,
)

__all__ = [
    "cholesky_solve",
    "log_det_psd",
    "nearest_psd",
    "solve_psd",
    "woodbury_inverse_apply",
    "as_generator",
    "spawn_generators",
    "check_matrix",
    "check_positive",
    "check_square",
    "check_vector",
]
