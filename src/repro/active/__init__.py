"""Active-learning acquisition subsystem.

Closes the loop the paper leaves open: C-BMF makes every simulation sample
worth more, this package decides *which* samples to buy. Acquisition
strategies score candidate points with the model's posterior-predictive
uncertainty (:mod:`repro.active.acquisition`), ``ActiveFitLoop`` drives
budgeted fit → score → simulate rounds with warm-started refits and
crash-resumable checkpoints (:mod:`repro.active.loop`), oracles adapt
circuits and synthetic ground truths to the loop
(:mod:`repro.active.oracle`), and the round history serializes/renders for
reports (:mod:`repro.active.history`).
"""

from repro.active.acquisition import (
    AcquisitionStrategy,
    CorrelationAwareAllocation,
    CostWeightedVariance,
    RandomAcquisition,
    VarianceAcquisition,
    YieldVarianceAcquisition,
)
from repro.active.history import FitHistory, RoundRecord
from repro.active.loop import (
    ActiveFitConfig,
    ActiveFitLoop,
    ActiveFitResult,
    StoppingRule,
    push_result,
)
from repro.active.oracle import (
    CircuitOracle,
    Oracle,
    SyntheticOracle,
    linearized_surrogate,
)

__all__ = [
    "AcquisitionStrategy",
    "ActiveFitConfig",
    "ActiveFitLoop",
    "ActiveFitResult",
    "CircuitOracle",
    "CorrelationAwareAllocation",
    "CostWeightedVariance",
    "FitHistory",
    "Oracle",
    "RandomAcquisition",
    "RoundRecord",
    "StoppingRule",
    "SyntheticOracle",
    "VarianceAcquisition",
    "YieldVarianceAcquisition",
    "linearized_surrogate",
    "push_result",
]
