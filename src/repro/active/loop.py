"""The budgeted, resumable fit → score → simulate → refit loop.

``ActiveFitLoop`` replaces "simulate N points, then fit" with rounds of

1. **refit** the C-BMF model on everything simulated so far — warm-started
   from the previous round's ``{λ, R, σ0}`` so the S-OMP cross-validation
   scan runs once, not every round. A warm start can also lock EM into a
   stale support; when the warm refit stops improving while the holdout
   error is still far above the learned noise floor, the loop re-runs the
   full cold initializer and keeps whichever model scores better
   (``cold_restart``);
2. **stop** if a rule fires — round/budget exhausted, holdout-error
   plateau, or posterior-std collapse;
3. **score** a fresh candidate pool with the configured acquisition
   strategy and **simulate** only the winners.

Every round ends with a JSON+npz checkpoint (when ``checkpoint_dir`` is
set): the dataset, the holdout set, the warm-start hyper-parameters, the
round history and the exact generator state. A crashed run resumed from
its checkpoint replays the identical random stream against pure-function
oracles, so it produces the *same* final model as the uninterrupted run —
not just a statistically equivalent one. Every npz/json file is written
to a sibling ``.tmp`` and renamed into place, and ``loop.json`` — written
last — records a sha256 checksum of each npz, so a crash *between* the
writes is detected on resume as a :class:`~repro.errors.CheckpointError`
naming the inconsistent file instead of silently resuming mixed rounds.

Oracle calls go through a retry/quarantine wrapper: a raising or
non-finite observation is retried up to ``config.max_retries`` times
(against a pure oracle the retry re-simulates the *same* points, so a
transient fault leaves the run bit-identical to a fault-free one), and
rows still bad after the budget are dropped and counted in the round's
``n_quarantined`` instead of crashing the loop.
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.active.acquisition import AcquisitionStrategy
from repro.active.history import FitHistory, RoundRecord
from repro.active.oracle import Oracle
from repro.basis.dictionary import BasisDictionary
from repro.basis.polynomial import LinearBasis
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig
from repro.errors import CheckpointError, SimulationError
from repro.evaluation.error import rmse
from repro.simulate.cost import CostLedger
from repro.simulate.dataset import Dataset, StateData
from repro.utils.rng import SeedLike, spawn_generators

logger = logging.getLogger("repro.active")

__all__ = [
    "ActiveFitConfig",
    "ActiveFitLoop",
    "ActiveFitResult",
    "StoppingRule",
    "push_result",
]

_STATE_FILE = "loop.json"
_DATA_FILE = "data.npz"
_ARRAYS_FILE = "arrays.npz"
_SCHEMA = 1


@dataclass(frozen=True)
class StoppingRule:
    """When the loop stops asking for more simulations.

    ``max_rounds`` always applies. ``max_samples`` caps the total
    simulation budget (the final batch shrinks to fit it exactly).
    ``plateau_patience > 0`` stops when the best holdout RMSE improved by
    less than ``plateau_rel_tol`` (relatively) over the last ``patience``
    rounds. ``std_collapse`` stops once the mean posterior-predictive std
    on the holdout set falls below the threshold — the model claims there
    is nothing left worth measuring.
    """

    max_rounds: int = 10
    max_samples: Optional[int] = None
    plateau_patience: int = 0
    plateau_rel_tol: float = 0.01
    std_collapse: Optional[float] = None


@dataclass(frozen=True)
class ActiveFitConfig:
    """Everything one active fit needs besides the oracle.

    ``max_retries`` bounds how often a failed or non-finite oracle batch
    is re-simulated before the offending rows are quarantined;
    ``retry_backoff`` is the base sleep (seconds, doubled per attempt)
    between those retries. Neither affects the loop's random stream, so
    runs that recover via retry stay bit-identical to fault-free runs.
    """

    metric: str
    strategy: Union[str, AcquisitionStrategy] = "variance"
    init_per_state: int = 4
    batch_per_round: int = 8
    n_candidates: int = 64
    holdout_per_state: int = 50
    stopping: StoppingRule = field(default_factory=StoppingRule)
    seed: SeedLike = None
    checkpoint_dir: Optional[str] = None
    cold_restart: bool = True
    init_config: Optional[InitConfig] = None
    em_config: Optional[EmConfig] = None
    max_retries: int = 2
    retry_backoff: float = 0.0


@dataclass
class ActiveFitResult:
    """Outcome of one :meth:`ActiveFitLoop.run`."""

    model: CBMF
    history: FitHistory
    dataset: Dataset
    ledger: CostLedger
    holdout_rmse: float

    @property
    def total_samples(self) -> int:
        """Simulation samples the run spent in total."""
        return self.ledger.total


def _digest(path) -> str:
    """sha256 hex digest of a file's bytes."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def _echo_config(config: ActiveFitConfig, strategy_name: str) -> dict:
    """The config fields a resume must agree on."""
    return {
        "metric": config.metric,
        "strategy": strategy_name,
        "init_per_state": int(config.init_per_state),
        "batch_per_round": int(config.batch_per_round),
        "n_candidates": int(config.n_candidates),
        "holdout_per_state": int(config.holdout_per_state),
    }


class ActiveFitLoop:
    """Closed-loop active fitting of one metric of one oracle.

    Parameters
    ----------
    oracle:
        Simulation endpoint (:class:`~repro.active.oracle.Oracle`).
    config:
        Loop configuration; ``config.metric`` should normally match
        ``oracle.metric``.
    basis:
        Basis dictionary for the model; defaults to a
        :class:`~repro.basis.polynomial.LinearBasis` over the oracle's
        variables.
    """

    def __init__(
        self,
        oracle: Oracle,
        config: ActiveFitConfig,
        basis: Optional[BasisDictionary] = None,
    ) -> None:
        if config.init_per_state < 2:
            raise ValueError(
                f"init_per_state must be >= 2, got {config.init_per_state}"
            )
        if config.batch_per_round < 1:
            raise ValueError(
                f"batch_per_round must be >= 1, got {config.batch_per_round}"
            )
        if config.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {config.max_retries}"
            )
        if config.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {config.retry_backoff}"
            )
        self.oracle = oracle
        self.config = config
        self.basis = basis or LinearBasis(oracle.n_variables)
        self.strategy = self._resolve_strategy(config.strategy)

    @staticmethod
    def _resolve_strategy(strategy) -> AcquisitionStrategy:
        if isinstance(strategy, AcquisitionStrategy):
            return strategy
        from repro.evaluation.methods import make_acquisition

        return make_acquisition(str(strategy))

    # ------------------------------------------------------------------
    # fault-tolerant oracle access
    # ------------------------------------------------------------------
    def _observe(
        self, x: np.ndarray, state_index: int
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Observe ``x`` with retry and non-finite-row quarantine.

        A raising :meth:`~repro.active.oracle.Oracle.observe` call retries
        the whole batch; non-finite rows retry only those rows. Retries
        re-simulate the *same* points and never touch the loop's random
        stream — against a pure oracle a recovered fault therefore leaves
        the run bit-identical to a fault-free one. Rows still failed or
        non-finite after ``config.max_retries`` extra attempts are dropped.

        Returns ``(x_kept, y_kept, n_quarantined)``.
        """
        config = self.config
        x = np.asarray(x, dtype=float)
        y = np.full(x.shape[0], np.nan)
        pending = np.arange(x.shape[0])
        for attempt in range(config.max_retries + 1):
            if attempt and config.retry_backoff > 0:
                time.sleep(config.retry_backoff * 2 ** (attempt - 1))
            try:
                values = np.asarray(
                    self.oracle.observe(x[pending], state_index),
                    dtype=float,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                logger.warning(
                    "oracle %r failed at state %d "
                    "(attempt %d/%d, %d row(s)): %s: %s",
                    self.oracle.name,
                    state_index,
                    attempt + 1,
                    config.max_retries + 1,
                    pending.size,
                    type(error).__name__,
                    error,
                )
                continue
            y[pending] = values
            pending = pending[~np.isfinite(values)]
            if pending.size == 0:
                break
            logger.warning(
                "oracle %r returned %d non-finite value(s) at state %d "
                "(attempt %d/%d)",
                self.oracle.name,
                pending.size,
                state_index,
                attempt + 1,
                config.max_retries + 1,
            )
        keep = np.isfinite(y)
        n_quarantined = int(x.shape[0] - keep.sum())
        if n_quarantined:
            logger.warning(
                "quarantined %d of %d row(s) at state %d after "
                "exhausting the retry budget",
                n_quarantined,
                x.shape[0],
                state_index,
            )
        return x[keep], y[keep], n_quarantined

    # ------------------------------------------------------------------
    # state initialization: fresh or from checkpoint
    # ------------------------------------------------------------------
    def _fresh_state(self) -> dict:
        oracle, config = self.oracle, self.config
        holdout_rng, loop_rng = spawn_generators(config.seed, 2)
        holdout_x = [
            holdout_rng.standard_normal(
                (config.holdout_per_state, oracle.n_variables)
            )
            for _ in range(oracle.n_states)
        ]
        ledger = CostLedger(oracle.n_states)
        states = []
        n_quarantined = 0
        for k in range(oracle.n_states):
            x = loop_rng.standard_normal(
                (config.init_per_state, oracle.n_variables)
            )
            x_kept, y, n_bad = self._observe(x, k)
            if x_kept.shape[0] < 2:
                raise SimulationError(
                    f"initial sampling of state {k} kept only "
                    f"{x_kept.shape[0]} of {x.shape[0]} row(s) after "
                    f"quarantine; need at least 2 to start the loop"
                )
            # The ledger counts scheduled simulations (first attempts):
            # retries are free so a fault-free run and a retry-recovered
            # run produce identical ledgers.
            ledger.record(k, x.shape[0])
            n_quarantined += n_bad
            states.append(StateData(x=x_kept, y={config.metric: y}))
        dataset = Dataset(oracle.name, states, (config.metric,))
        return {
            "round_index": 0,
            "rng": loop_rng,
            "holdout_x": holdout_x,
            "dataset": dataset,
            "ledger": ledger,
            "history": FitHistory(
                strategy=self.strategy.name, metric=config.metric
            ),
            "warm": None,
            "best_rmse": float("inf"),
            "quarantine_carry": n_quarantined,
        }

    def _load_state(self) -> dict:
        directory = Path(self.config.checkpoint_dir)
        state_path = directory / _STATE_FILE
        if not state_path.exists():
            raise FileNotFoundError(
                f"no checkpoint at {state_path}; run without resume first"
            )
        with open(state_path) as handle:
            payload = json.load(handle)
        if payload.get("schema") != _SCHEMA:
            raise ValueError(
                f"checkpoint schema {payload.get('schema')} unsupported"
            )
        echo = _echo_config(self.config, self.strategy.name)
        if payload["config"] != echo:
            raise ValueError(
                "checkpoint was written by a different configuration:\n"
                f"  checkpoint: {payload['config']}\n"
                f"  current:    {echo}"
            )
        # loop.json is written last and records a checksum of every npz,
        # so a crash between the npz writes and the state write — or any
        # later corruption — is caught here instead of silently resuming
        # from mixed rounds.
        for name, expected in sorted(
            payload.get("checksums", {}).items()
        ):
            target = directory / name
            if not target.exists():
                raise CheckpointError(
                    f"checkpoint file {target} is missing", path=target
                )
            if _digest(target) != expected:
                raise CheckpointError(
                    f"checkpoint file {target} does not match the "
                    f"checksum recorded in {state_path}; the checkpoint "
                    f"is stale or corrupt — delete the directory and "
                    f"rerun without resume",
                    path=target,
                )
        data_path = directory / _DATA_FILE
        try:
            dataset = Dataset.load(data_path)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:
            raise CheckpointError(
                f"failed to load checkpoint dataset {data_path}: "
                f"{type(error).__name__}: {error}",
                path=data_path,
            ) from error
        arrays_path = directory / _ARRAYS_FILE
        try:
            with np.load(arrays_path, allow_pickle=False) as arrays:
                holdout_x = [
                    arrays[f"holdout_{k}"]
                    for k in range(self.oracle.n_states)
                ]
                warm = None
                if "warm_lambdas" in arrays:
                    warm = {
                        "lambdas": arrays["warm_lambdas"],
                        "correlation": arrays["warm_correlation"],
                        **payload["warm_scalars"],
                    }
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:
            raise CheckpointError(
                f"failed to load checkpoint arrays {arrays_path}: "
                f"{type(error).__name__}: {error}",
                path=arrays_path,
            ) from error
        loop_rng = np.random.default_rng()
        loop_rng.bit_generator.state = payload["rng_state"]
        return {
            "finished": bool(payload.get("finished", False)),
            "round_index": int(payload["round_index"]),
            "rng": loop_rng,
            "holdout_x": holdout_x,
            "dataset": dataset,
            "ledger": CostLedger.from_dict(payload["ledger"]),
            "history": FitHistory.from_dict(payload["history"]),
            "warm": warm,
            "best_rmse": float(payload["best_rmse"]),
            "quarantine_carry": 0,
        }

    def _checkpoint(self, state: dict, model: CBMF, finished: bool) -> None:
        directory = Path(self.config.checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        warm, checksums = self._write_checkpoint_payload(
            state, model, directory
        )
        self._write_checkpoint_state(
            state, warm, checksums, finished, directory
        )

    def _write_checkpoint_payload(
        self, state: dict, model: CBMF, directory: Path
    ):
        """Write the npz half of a checkpoint (atomically).

        Returns the warm-start dict and the sha256 checksums the state
        file must record. Separate from :meth:`_write_checkpoint_state`
        so a crash between the two halves is a testable seam — the
        checksums make such a crash detectable on resume.
        """
        state["dataset"].save(directory / _DATA_FILE)
        warm = model.warm_state()
        arrays = {
            f"holdout_{k}": x for k, x in enumerate(state["holdout_x"])
        }
        arrays["warm_lambdas"] = warm["lambdas"]
        arrays["warm_correlation"] = warm["correlation"]
        arrays_path = directory / _ARRAYS_FILE
        tmp_path = directory / (_ARRAYS_FILE + ".tmp")
        # An open handle sidesteps numpy's automatic ".npz" suffixing.
        with open(tmp_path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        tmp_path.replace(arrays_path)
        checksums = {
            _DATA_FILE: _digest(directory / _DATA_FILE),
            _ARRAYS_FILE: _digest(arrays_path),
        }
        return warm, checksums

    def _write_checkpoint_state(
        self,
        state: dict,
        warm: dict,
        checksums: dict,
        finished: bool,
        directory: Path,
    ) -> None:
        """Write ``loop.json`` — the commit point of a checkpoint."""
        payload = {
            "schema": _SCHEMA,
            "config": _echo_config(self.config, self.strategy.name),
            "round_index": int(state["round_index"]),
            "rng_state": state["rng"].bit_generator.state,
            "history": state["history"].to_dict(),
            "ledger": state["ledger"].to_dict(),
            "warm_scalars": {
                "noise_std": warm["noise_std"],
                "scale": warm["scale"],
                "r0": warm["r0"],
            },
            "best_rmse": float(state["best_rmse"]),
            "finished": bool(finished),
            "stop_reason": state["history"].stop_reason,
            "checksums": dict(checksums),
        }
        tmp_path = directory / (_STATE_FILE + ".tmp")
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        tmp_path.replace(directory / _STATE_FILE)

    # ------------------------------------------------------------------
    def _holdout_error(self, model: CBMF, holdout_x) -> float:
        predictions, truths = [], []
        for k, x in enumerate(holdout_x):
            design = self.basis.expand(x)
            predictions.append(model.predict(design, k))
            truths.append(self.oracle.truth(x, k))
        return rmse(predictions, truths)

    def _fit_round(self, state: dict):
        """One refit: warm-started, with the stagnation-triggered rescue."""
        config = self.config
        dataset = state["dataset"]
        designs = self.basis.expand_states(dataset.inputs())
        targets = dataset.targets(config.metric)
        fit_seed = int(state["rng"].integers(2**31))

        def fit(warm):
            return CBMF(
                init_config=config.init_config,
                em_config=config.em_config,
                seed=fit_seed,
                warm_start=warm,
            ).fit(designs, targets)

        warm = state["warm"]
        model = fit(warm)
        refit = "warm" if warm is not None else "cold"
        error = self._holdout_error(model, state["holdout_x"])
        if warm is not None and config.cold_restart:
            best = state["best_rmse"]
            stalled = error > best or (
                error > 1.5 * model.noise_std_ and error > 0.85 * best
            )
            if stalled:
                cold = fit(None)
                cold_error = self._holdout_error(cold, state["holdout_x"])
                if cold_error < error:
                    model, error, refit = cold, cold_error, "warm+cold"
        return model, error, refit

    def _stop_reason(
        self, state: dict, model: CBMF, error: float
    ) -> Optional[str]:
        rule = self.config.stopping
        if state["round_index"] + 1 >= rule.max_rounds:
            return "max_rounds"
        if rule.max_samples is not None:
            if state["dataset"].n_samples_total >= rule.max_samples:
                return "budget"
        if rule.plateau_patience > 0:
            errors = [r.holdout_rmse for r in state["history"].rounds]
            errors.append(error)
            patience = rule.plateau_patience
            if len(errors) > patience:
                now = min(errors)
                before = min(errors[:-patience])
                if before - now < rule.plateau_rel_tol * before:
                    return "plateau"
        if rule.std_collapse is not None:
            spread = float(
                np.mean(
                    [
                        np.mean(
                            model.predict_std(self.basis.expand(x), k)
                        )
                        for k, x in enumerate(state["holdout_x"])
                    ]
                )
            )
            if spread < rule.std_collapse:
                return "std_collapse"
        return None

    def _acquire(
        self, state: dict, model: CBMF
    ) -> Tuple[List[int], int, Tuple[str, ...]]:
        """Score a fresh pool, simulate the winners, grow the dataset.

        Returns ``(added_per_state, n_quarantined, degraded)`` where
        ``degraded`` lists any graceful-degradation markers the strategy
        recorded while selecting (see
        :attr:`~repro.active.acquisition.AcquisitionStrategy.last_degraded`).
        """
        config, oracle = self.config, self.oracle
        rng = state["rng"]
        batch = config.batch_per_round
        if config.stopping.max_samples is not None:
            remaining = (
                config.stopping.max_samples
                - state["dataset"].n_samples_total
            )
            batch = min(batch, remaining)
        candidates = [
            rng.standard_normal((config.n_candidates, oracle.n_variables))
            for _ in range(oracle.n_states)
        ]
        self.strategy.last_degraded = ()
        picks = self.strategy.select(
            model, self.basis, candidates, batch, rng
        )
        degraded = tuple(getattr(self.strategy, "last_degraded", ()))
        added = [0] * oracle.n_states
        n_quarantined = 0
        merged_states = []
        for k, base in enumerate(state["dataset"].states):
            indices = np.asarray(picks[k], dtype=int)
            if indices.size == 0:
                merged_states.append(base)
                continue
            x_new, y_new, n_bad = self._observe(candidates[k][indices], k)
            state["ledger"].record(k, int(indices.size))
            n_quarantined += n_bad
            added[k] = int(x_new.shape[0])
            if x_new.shape[0] == 0:
                merged_states.append(base)
                continue
            merged_states.append(
                StateData(
                    x=np.vstack([base.x, x_new]),
                    y={
                        config.metric: np.concatenate(
                            [base.y[config.metric], y_new]
                        )
                    },
                )
            )
        state["dataset"] = Dataset(
            oracle.name, merged_states, (config.metric,)
        )
        return added, n_quarantined, degraded

    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> ActiveFitResult:
        """Run the loop to a stopping rule; optionally resume a checkpoint.

        ``resume=True`` requires ``config.checkpoint_dir`` and restores
        the dataset, history, warm start and generator state written after
        the last completed round, then continues as if never interrupted.
        Resuming a checkpoint of a run that already finished refits on the
        final dataset and returns the recorded history unchanged.
        """
        if resume:
            if not self.config.checkpoint_dir:
                raise ValueError("resume requires config.checkpoint_dir")
            state = self._load_state()
            if state.pop("finished"):
                # The run already completed: the checkpoint stores the
                # warm-start hyper-parameters rather than coefficients, so
                # refit once on the final dataset and hand back the
                # recorded history untouched (no extra round, and the
                # checkpoint is not rewritten — resuming again is
                # idempotent).
                model, error, _ = self._fit_round(state)
                return ActiveFitResult(
                    model=model,
                    history=state["history"],
                    dataset=state["dataset"],
                    ledger=state["ledger"],
                    holdout_rmse=float(error),
                )
        else:
            state = self._fresh_state()

        model: Optional[CBMF] = None
        error = float("inf")
        while True:
            started = time.perf_counter()
            model, error, refit = self._fit_round(state)
            state["best_rmse"] = min(state["best_rmse"], error)
            # sample counts as of the fit: the cost at which `error` was
            # achieved (the acquisition below buys the *next* round)
            fit_total = state["dataset"].n_samples_total
            fit_per_state = tuple(state["dataset"].n_samples_per_state)
            # Quarantines from the initial sampling land on round 0.
            n_quarantined = int(state.pop("quarantine_carry", 0))
            reason = self._stop_reason(state, model, error)
            if reason is None:
                added, n_bad, degraded = self._acquire(state, model)
                n_quarantined += n_bad
            else:
                added = [0] * self.oracle.n_states
                degraded = ()
                state["history"].stop_reason = reason
            state["history"].append(
                RoundRecord(
                    round_index=state["round_index"],
                    n_samples_total=fit_total,
                    n_samples_per_state=fit_per_state,
                    n_added_per_state=tuple(added),
                    holdout_rmse=float(error),
                    best_rmse=float(state["best_rmse"]),
                    noise_std=float(model.noise_std_),
                    refit=refit,
                    wall_seconds=time.perf_counter() - started,
                    n_quarantined=n_quarantined,
                    degraded=degraded,
                )
            )
            state["warm"] = model
            state["round_index"] += 1
            if self.config.checkpoint_dir:
                self._checkpoint(state, model, finished=reason is not None)
            if reason is not None:
                break

        return ActiveFitResult(
            model=model,
            history=state["history"],
            dataset=state["dataset"],
            ledger=state["ledger"],
            holdout_rmse=float(error),
        )


def push_result(
    registry,
    name: str,
    result: ActiveFitResult,
    basis: BasisDictionary,
    cost_model=None,
    extra: Optional[dict] = None,
):
    """Push an active fit to a model registry, with acquisition metadata.

    Wraps the single-metric model into a
    :class:`~repro.modelset.PerformanceModelSet` and records *how* it was
    obtained in the manifest — strategy, rounds, per-state and total
    simulation counts (plus modeled simulation seconds when a
    :class:`~repro.simulate.cost.CostModel` is given) — so a registry
    reader can audit the budget behind any served model. Returns the new
    :class:`~repro.serving.registry.RegistryEntry`.
    """
    from repro.modelset import PerformanceModelSet

    history = result.history
    metadata = {
        "acquisition": {
            "strategy": history.strategy,
            "metric": history.metric,
            "rounds": history.n_rounds,
            "stop_reason": history.stop_reason,
            "total_simulations": result.ledger.total,
            "simulations_per_state": list(result.ledger.per_state),
            "holdout_rmse": float(result.holdout_rmse),
            "best_rmse": float(history.best_rmse),
        }
    }
    if cost_model is not None:
        metadata["acquisition"]["simulation_seconds"] = (
            result.ledger.modeling_cost(cost_model).simulation_seconds
        )
    if extra:
        metadata.update(extra)
    models = PerformanceModelSet({history.metric: result.model}, basis)
    return registry.push(name, models, extra=metadata)
