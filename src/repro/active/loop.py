"""The budgeted, resumable fit → score → simulate → refit loop.

``ActiveFitLoop`` replaces "simulate N points, then fit" with rounds of

1. **refit** the C-BMF model on everything simulated so far — warm-started
   from the previous round's ``{λ, R, σ0}`` so the S-OMP cross-validation
   scan runs once, not every round. A warm start can also lock EM into a
   stale support; when the warm refit stops improving while the holdout
   error is still far above the learned noise floor, the loop re-runs the
   full cold initializer and keeps whichever model scores better
   (``cold_restart``);
2. **stop** if a rule fires — round/budget exhausted, holdout-error
   plateau, or posterior-std collapse;
3. **score** a fresh candidate pool with the configured acquisition
   strategy and **simulate** only the winners.

Every round ends with a JSON+npz checkpoint (when ``checkpoint_dir`` is
set): the dataset, the holdout set, the warm-start hyper-parameters, the
round history and the exact generator state. A crashed run resumed from
its checkpoint replays the identical random stream against pure-function
oracles, so it produces the *same* final model as the uninterrupted run —
not just a statistically equivalent one.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.active.acquisition import AcquisitionStrategy
from repro.active.history import FitHistory, RoundRecord
from repro.active.oracle import Oracle
from repro.basis.dictionary import BasisDictionary
from repro.basis.polynomial import LinearBasis
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig
from repro.evaluation.error import rmse
from repro.simulate.cost import CostLedger
from repro.simulate.dataset import Dataset, StateData
from repro.utils.rng import SeedLike, spawn_generators

__all__ = [
    "ActiveFitConfig",
    "ActiveFitLoop",
    "ActiveFitResult",
    "StoppingRule",
    "push_result",
]

_STATE_FILE = "loop.json"
_DATA_FILE = "data.npz"
_ARRAYS_FILE = "arrays.npz"
_SCHEMA = 1


@dataclass(frozen=True)
class StoppingRule:
    """When the loop stops asking for more simulations.

    ``max_rounds`` always applies. ``max_samples`` caps the total
    simulation budget (the final batch shrinks to fit it exactly).
    ``plateau_patience > 0`` stops when the best holdout RMSE improved by
    less than ``plateau_rel_tol`` (relatively) over the last ``patience``
    rounds. ``std_collapse`` stops once the mean posterior-predictive std
    on the holdout set falls below the threshold — the model claims there
    is nothing left worth measuring.
    """

    max_rounds: int = 10
    max_samples: Optional[int] = None
    plateau_patience: int = 0
    plateau_rel_tol: float = 0.01
    std_collapse: Optional[float] = None


@dataclass(frozen=True)
class ActiveFitConfig:
    """Everything one active fit needs besides the oracle."""

    metric: str
    strategy: Union[str, AcquisitionStrategy] = "variance"
    init_per_state: int = 4
    batch_per_round: int = 8
    n_candidates: int = 64
    holdout_per_state: int = 50
    stopping: StoppingRule = field(default_factory=StoppingRule)
    seed: SeedLike = None
    checkpoint_dir: Optional[str] = None
    cold_restart: bool = True
    init_config: Optional[InitConfig] = None
    em_config: Optional[EmConfig] = None


@dataclass
class ActiveFitResult:
    """Outcome of one :meth:`ActiveFitLoop.run`."""

    model: CBMF
    history: FitHistory
    dataset: Dataset
    ledger: CostLedger
    holdout_rmse: float

    @property
    def total_samples(self) -> int:
        """Simulation samples the run spent in total."""
        return self.ledger.total


def _echo_config(config: ActiveFitConfig, strategy_name: str) -> dict:
    """The config fields a resume must agree on."""
    return {
        "metric": config.metric,
        "strategy": strategy_name,
        "init_per_state": int(config.init_per_state),
        "batch_per_round": int(config.batch_per_round),
        "n_candidates": int(config.n_candidates),
        "holdout_per_state": int(config.holdout_per_state),
    }


class ActiveFitLoop:
    """Closed-loop active fitting of one metric of one oracle.

    Parameters
    ----------
    oracle:
        Simulation endpoint (:class:`~repro.active.oracle.Oracle`).
    config:
        Loop configuration; ``config.metric`` should normally match
        ``oracle.metric``.
    basis:
        Basis dictionary for the model; defaults to a
        :class:`~repro.basis.polynomial.LinearBasis` over the oracle's
        variables.
    """

    def __init__(
        self,
        oracle: Oracle,
        config: ActiveFitConfig,
        basis: Optional[BasisDictionary] = None,
    ) -> None:
        if config.init_per_state < 2:
            raise ValueError(
                f"init_per_state must be >= 2, got {config.init_per_state}"
            )
        if config.batch_per_round < 1:
            raise ValueError(
                f"batch_per_round must be >= 1, got {config.batch_per_round}"
            )
        self.oracle = oracle
        self.config = config
        self.basis = basis or LinearBasis(oracle.n_variables)
        self.strategy = self._resolve_strategy(config.strategy)

    @staticmethod
    def _resolve_strategy(strategy) -> AcquisitionStrategy:
        if isinstance(strategy, AcquisitionStrategy):
            return strategy
        from repro.evaluation.methods import make_acquisition

        return make_acquisition(str(strategy))

    # ------------------------------------------------------------------
    # state initialization: fresh or from checkpoint
    # ------------------------------------------------------------------
    def _fresh_state(self) -> dict:
        oracle, config = self.oracle, self.config
        holdout_rng, loop_rng = spawn_generators(config.seed, 2)
        holdout_x = [
            holdout_rng.standard_normal(
                (config.holdout_per_state, oracle.n_variables)
            )
            for _ in range(oracle.n_states)
        ]
        ledger = CostLedger(oracle.n_states)
        states = []
        for k in range(oracle.n_states):
            x = loop_rng.standard_normal(
                (config.init_per_state, oracle.n_variables)
            )
            y = oracle.observe(x, k)
            ledger.record(k, x.shape[0])
            states.append(StateData(x=x, y={config.metric: y}))
        dataset = Dataset(oracle.name, states, (config.metric,))
        return {
            "round_index": 0,
            "rng": loop_rng,
            "holdout_x": holdout_x,
            "dataset": dataset,
            "ledger": ledger,
            "history": FitHistory(
                strategy=self.strategy.name, metric=config.metric
            ),
            "warm": None,
            "best_rmse": float("inf"),
        }

    def _load_state(self) -> dict:
        directory = Path(self.config.checkpoint_dir)
        state_path = directory / _STATE_FILE
        if not state_path.exists():
            raise FileNotFoundError(
                f"no checkpoint at {state_path}; run without resume first"
            )
        with open(state_path) as handle:
            payload = json.load(handle)
        if payload.get("schema") != _SCHEMA:
            raise ValueError(
                f"checkpoint schema {payload.get('schema')} unsupported"
            )
        echo = _echo_config(self.config, self.strategy.name)
        if payload["config"] != echo:
            raise ValueError(
                "checkpoint was written by a different configuration:\n"
                f"  checkpoint: {payload['config']}\n"
                f"  current:    {echo}"
            )
        dataset = Dataset.load(directory / _DATA_FILE)
        with np.load(directory / _ARRAYS_FILE, allow_pickle=False) as arrays:
            holdout_x = [
                arrays[f"holdout_{k}"] for k in range(self.oracle.n_states)
            ]
            warm = None
            if "warm_lambdas" in arrays:
                warm = {
                    "lambdas": arrays["warm_lambdas"],
                    "correlation": arrays["warm_correlation"],
                    **payload["warm_scalars"],
                }
        loop_rng = np.random.default_rng()
        loop_rng.bit_generator.state = payload["rng_state"]
        return {
            "finished": bool(payload.get("finished", False)),
            "round_index": int(payload["round_index"]),
            "rng": loop_rng,
            "holdout_x": holdout_x,
            "dataset": dataset,
            "ledger": CostLedger.from_dict(payload["ledger"]),
            "history": FitHistory.from_dict(payload["history"]),
            "warm": warm,
            "best_rmse": float(payload["best_rmse"]),
        }

    def _checkpoint(self, state: dict, model: CBMF, finished: bool) -> None:
        directory = Path(self.config.checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        state["dataset"].save(directory / _DATA_FILE)
        warm = model.warm_state()
        arrays = {
            f"holdout_{k}": x for k, x in enumerate(state["holdout_x"])
        }
        arrays["warm_lambdas"] = warm["lambdas"]
        arrays["warm_correlation"] = warm["correlation"]
        np.savez_compressed(directory / _ARRAYS_FILE, **arrays)
        payload = {
            "schema": _SCHEMA,
            "config": _echo_config(self.config, self.strategy.name),
            "round_index": int(state["round_index"]),
            "rng_state": state["rng"].bit_generator.state,
            "history": state["history"].to_dict(),
            "ledger": state["ledger"].to_dict(),
            "warm_scalars": {
                "noise_std": warm["noise_std"],
                "scale": warm["scale"],
                "r0": warm["r0"],
            },
            "best_rmse": float(state["best_rmse"]),
            "finished": bool(finished),
            "stop_reason": state["history"].stop_reason,
        }
        tmp_path = directory / (_STATE_FILE + ".tmp")
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        tmp_path.replace(directory / _STATE_FILE)

    # ------------------------------------------------------------------
    def _holdout_error(self, model: CBMF, holdout_x) -> float:
        predictions, truths = [], []
        for k, x in enumerate(holdout_x):
            design = self.basis.expand(x)
            predictions.append(model.predict(design, k))
            truths.append(self.oracle.truth(x, k))
        return rmse(predictions, truths)

    def _fit_round(self, state: dict):
        """One refit: warm-started, with the stagnation-triggered rescue."""
        config = self.config
        dataset = state["dataset"]
        designs = self.basis.expand_states(dataset.inputs())
        targets = dataset.targets(config.metric)
        fit_seed = int(state["rng"].integers(2**31))

        def fit(warm):
            return CBMF(
                init_config=config.init_config,
                em_config=config.em_config,
                seed=fit_seed,
                warm_start=warm,
            ).fit(designs, targets)

        warm = state["warm"]
        model = fit(warm)
        refit = "warm" if warm is not None else "cold"
        error = self._holdout_error(model, state["holdout_x"])
        if warm is not None and config.cold_restart:
            best = state["best_rmse"]
            stalled = error > best or (
                error > 1.5 * model.noise_std_ and error > 0.85 * best
            )
            if stalled:
                cold = fit(None)
                cold_error = self._holdout_error(cold, state["holdout_x"])
                if cold_error < error:
                    model, error, refit = cold, cold_error, "warm+cold"
        return model, error, refit

    def _stop_reason(
        self, state: dict, model: CBMF, error: float
    ) -> Optional[str]:
        rule = self.config.stopping
        if state["round_index"] + 1 >= rule.max_rounds:
            return "max_rounds"
        if rule.max_samples is not None:
            if state["dataset"].n_samples_total >= rule.max_samples:
                return "budget"
        if rule.plateau_patience > 0:
            errors = [r.holdout_rmse for r in state["history"].rounds]
            errors.append(error)
            patience = rule.plateau_patience
            if len(errors) > patience:
                now = min(errors)
                before = min(errors[:-patience])
                if before - now < rule.plateau_rel_tol * before:
                    return "plateau"
        if rule.std_collapse is not None:
            spread = float(
                np.mean(
                    [
                        np.mean(
                            model.predict_std(self.basis.expand(x), k)
                        )
                        for k, x in enumerate(state["holdout_x"])
                    ]
                )
            )
            if spread < rule.std_collapse:
                return "std_collapse"
        return None

    def _acquire(self, state: dict, model: CBMF) -> List[int]:
        """Score a fresh pool, simulate the winners, grow the dataset."""
        config, oracle = self.config, self.oracle
        rng = state["rng"]
        batch = config.batch_per_round
        if config.stopping.max_samples is not None:
            remaining = (
                config.stopping.max_samples
                - state["dataset"].n_samples_total
            )
            batch = min(batch, remaining)
        candidates = [
            rng.standard_normal((config.n_candidates, oracle.n_variables))
            for _ in range(oracle.n_states)
        ]
        picks = self.strategy.select(
            model, self.basis, candidates, batch, rng
        )
        added = [0] * oracle.n_states
        merged_states = []
        for k, base in enumerate(state["dataset"].states):
            indices = np.asarray(picks[k], dtype=int)
            if indices.size == 0:
                merged_states.append(base)
                continue
            x_new = candidates[k][indices]
            y_new = oracle.observe(x_new, k)
            state["ledger"].record(k, x_new.shape[0])
            added[k] = int(x_new.shape[0])
            merged_states.append(
                StateData(
                    x=np.vstack([base.x, x_new]),
                    y={
                        config.metric: np.concatenate(
                            [base.y[config.metric], y_new]
                        )
                    },
                )
            )
        state["dataset"] = Dataset(
            oracle.name, merged_states, (config.metric,)
        )
        return added

    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> ActiveFitResult:
        """Run the loop to a stopping rule; optionally resume a checkpoint.

        ``resume=True`` requires ``config.checkpoint_dir`` and restores
        the dataset, history, warm start and generator state written after
        the last completed round, then continues as if never interrupted.
        Resuming a checkpoint of a run that already finished refits on the
        final dataset and returns the recorded history unchanged.
        """
        if resume:
            if not self.config.checkpoint_dir:
                raise ValueError("resume requires config.checkpoint_dir")
            state = self._load_state()
            if state.pop("finished"):
                # The run already completed: the checkpoint stores the
                # warm-start hyper-parameters rather than coefficients, so
                # refit once on the final dataset and hand back the
                # recorded history untouched (no extra round, and the
                # checkpoint is not rewritten — resuming again is
                # idempotent).
                model, error, _ = self._fit_round(state)
                return ActiveFitResult(
                    model=model,
                    history=state["history"],
                    dataset=state["dataset"],
                    ledger=state["ledger"],
                    holdout_rmse=float(error),
                )
        else:
            state = self._fresh_state()

        model: Optional[CBMF] = None
        error = float("inf")
        while True:
            started = time.perf_counter()
            model, error, refit = self._fit_round(state)
            state["best_rmse"] = min(state["best_rmse"], error)
            # sample counts as of the fit: the cost at which `error` was
            # achieved (the acquisition below buys the *next* round)
            fit_total = state["dataset"].n_samples_total
            fit_per_state = tuple(state["dataset"].n_samples_per_state)
            reason = self._stop_reason(state, model, error)
            if reason is None:
                added = self._acquire(state, model)
            else:
                added = [0] * self.oracle.n_states
                state["history"].stop_reason = reason
            state["history"].append(
                RoundRecord(
                    round_index=state["round_index"],
                    n_samples_total=fit_total,
                    n_samples_per_state=fit_per_state,
                    n_added_per_state=tuple(added),
                    holdout_rmse=float(error),
                    best_rmse=float(state["best_rmse"]),
                    noise_std=float(model.noise_std_),
                    refit=refit,
                    wall_seconds=time.perf_counter() - started,
                )
            )
            state["warm"] = model
            state["round_index"] += 1
            if self.config.checkpoint_dir:
                self._checkpoint(state, model, finished=reason is not None)
            if reason is not None:
                break

        return ActiveFitResult(
            model=model,
            history=state["history"],
            dataset=state["dataset"],
            ledger=state["ledger"],
            holdout_rmse=float(error),
        )


def push_result(
    registry,
    name: str,
    result: ActiveFitResult,
    basis: BasisDictionary,
    cost_model=None,
    extra: Optional[dict] = None,
):
    """Push an active fit to a model registry, with acquisition metadata.

    Wraps the single-metric model into a
    :class:`~repro.modelset.PerformanceModelSet` and records *how* it was
    obtained in the manifest — strategy, rounds, per-state and total
    simulation counts (plus modeled simulation seconds when a
    :class:`~repro.simulate.cost.CostModel` is given) — so a registry
    reader can audit the budget behind any served model. Returns the new
    :class:`~repro.serving.registry.RegistryEntry`.
    """
    from repro.modelset import PerformanceModelSet

    history = result.history
    metadata = {
        "acquisition": {
            "strategy": history.strategy,
            "metric": history.metric,
            "rounds": history.n_rounds,
            "stop_reason": history.stop_reason,
            "total_simulations": result.ledger.total,
            "simulations_per_state": list(result.ledger.per_state),
            "holdout_rmse": float(result.holdout_rmse),
            "best_rmse": float(history.best_rmse),
        }
    }
    if cost_model is not None:
        metadata["acquisition"]["simulation_seconds"] = (
            result.ledger.modeling_cost(cost_model).simulation_seconds
        )
    if extra:
        metadata.update(extra)
    models = PerformanceModelSet({history.metric: result.model}, basis)
    return registry.push(name, models, extra=metadata)
