"""Round-by-round record of an active-learning fit.

One :class:`RoundRecord` per loop round — samples spent so far (total and
per state), the holdout error the round's refit achieved, which refit path
produced it (warm, cold, or warm rescued by a cold restart) and the wall
time — collected into a :class:`FitHistory` that serializes to JSON for
checkpoints and renders through
:func:`repro.evaluation.report.format_active_history`. The determinism
contract of the whole subsystem is stated in terms of this object: two
runs with identical configuration and seed produce byte-identical
``to_json()`` payloads (modulo wall-clock fields).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

__all__ = ["FitHistory", "RoundRecord"]

_SCHEMA = 1


@dataclass(frozen=True)
class RoundRecord:
    """What one round of the loop spent and what it bought.

    ``n_quarantined`` counts simulation rows this round dropped after
    exhausting the retry budget (failed or non-finite observations);
    ``degraded`` lists the graceful-degradation paths the round took
    (e.g. an acquisition falling back to uniform allocation), so
    degraded rounds are distinguishable from healthy ones in histories
    and reports.
    """

    round_index: int
    n_samples_total: int
    n_samples_per_state: Tuple[int, ...]
    n_added_per_state: Tuple[int, ...]
    holdout_rmse: float
    best_rmse: float
    noise_std: float
    refit: str
    wall_seconds: float
    n_quarantined: int = 0
    degraded: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "round_index": int(self.round_index),
            "n_samples_total": int(self.n_samples_total),
            "n_samples_per_state": list(self.n_samples_per_state),
            "n_added_per_state": list(self.n_added_per_state),
            "holdout_rmse": float(self.holdout_rmse),
            "best_rmse": float(self.best_rmse),
            "noise_std": float(self.noise_std),
            "refit": str(self.refit),
            "wall_seconds": float(self.wall_seconds),
            "n_quarantined": int(self.n_quarantined),
            "degraded": list(self.degraded),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RoundRecord":
        """Rebuild a record from :meth:`to_dict` output.

        ``n_quarantined``/``degraded`` default when absent, so
        checkpoints written before fault tolerance existed still load.
        """
        return cls(
            round_index=int(payload["round_index"]),
            n_samples_total=int(payload["n_samples_total"]),
            n_samples_per_state=tuple(
                int(n) for n in payload["n_samples_per_state"]
            ),
            n_added_per_state=tuple(
                int(n) for n in payload["n_added_per_state"]
            ),
            holdout_rmse=float(payload["holdout_rmse"]),
            best_rmse=float(payload["best_rmse"]),
            noise_std=float(payload["noise_std"]),
            refit=str(payload["refit"]),
            wall_seconds=float(payload["wall_seconds"]),
            n_quarantined=int(payload.get("n_quarantined", 0)),
            degraded=tuple(
                str(d) for d in payload.get("degraded", ())
            ),
        )


@dataclass
class FitHistory:
    """Every round of one active-learning run, in order."""

    strategy: str
    metric: str
    rounds: List[RoundRecord] = field(default_factory=list)
    stop_reason: Optional[str] = None

    def append(self, record: RoundRecord) -> None:
        """Add the next round (indices must arrive in order)."""
        if record.round_index != len(self.rounds):
            raise ValueError(
                f"expected round {len(self.rounds)}, "
                f"got {record.round_index}"
            )
        self.rounds.append(record)

    @property
    def n_rounds(self) -> int:
        """Rounds completed so far."""
        return len(self.rounds)

    @property
    def total_samples(self) -> int:
        """Simulation samples spent up to the last round."""
        return self.rounds[-1].n_samples_total if self.rounds else 0

    @property
    def best_rmse(self) -> float:
        """Best holdout RMSE any round achieved."""
        if not self.rounds:
            return float("inf")
        return min(record.holdout_rmse for record in self.rounds)

    @property
    def total_quarantined(self) -> int:
        """Simulation rows quarantined over the whole run."""
        return sum(record.n_quarantined for record in self.rounds)

    def samples_to_reach(self, target_rmse: float) -> Optional[int]:
        """Samples spent when the holdout RMSE first reached ``target``.

        The matched-accuracy cost question the paper asks of C-BMF,
        asked of an acquisition strategy: ``None`` if no round got there.
        """
        for record in self.rounds:
            if record.holdout_rmse <= target_rmse:
                return record.n_samples_total
        return None

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "schema": _SCHEMA,
            "strategy": self.strategy,
            "metric": self.metric,
            "stop_reason": self.stop_reason,
            "rounds": [record.to_dict() for record in self.rounds],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FitHistory":
        """Rebuild a history from :meth:`to_dict` output."""
        history = cls(
            strategy=str(payload["strategy"]),
            metric=str(payload["metric"]),
            stop_reason=payload.get("stop_reason"),
        )
        for entry in payload["rounds"]:
            history.append(RoundRecord.from_dict(entry))
        return history

    def to_json(self, path=None) -> str:
        """Dump as JSON text; also write it to ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_json(cls, source) -> "FitHistory":
        """Load from a JSON string or a file path."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            text = Path(source).read_text()
        return cls.from_dict(json.loads(text))
