"""Simulation oracles the active loop draws its observations from.

The loop itself only needs two operations: *observe* chosen points at a
knob state (one transistor-level simulation each) and — for holdout
scoring only — the *latent truth* at points, when the substrate can
provide it noiselessly.

Two oracles cover the repo's use cases:

* :class:`CircuitOracle` wraps a :class:`~repro.circuits.base.TunableCircuit`
  through :meth:`~repro.simulate.montecarlo.MonteCarloEngine.evaluate_points`
  — the production path, deterministic given the points.
* :class:`SyntheticOracle` is an explicit sparse linear ground truth with
  optional observation noise. The noise is **derived from the point
  itself** (a hash of the sample bytes seeds a throwaway generator), so an
  oracle call is a pure function: re-simulating the same point returns the
  same value no matter the call order. That property is what makes
  checkpoint/resume runs bit-identical to uninterrupted ones.

:func:`linearized_surrogate` builds a ``SyntheticOracle`` whose
coefficients come from a reference C-BMF fit of a real circuit — the
benchmark substrate for active-vs-random A/B tests. Variance-driven
selection provably helps when the model family matches the truth; on the
raw (mildly nonlinear) circuits, leverage-seeking sampling also amplifies
misspecification bias and the comparison measures the basis, not the
acquisition. The surrogate keeps the circuit's true sensitivity structure
while making the linear basis exact, which is the regime the comparison
is meant to certify.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.basis.dictionary import BasisDictionary
from repro.basis.polynomial import LinearBasis
from repro.circuits.base import TunableCircuit
from repro.core.cbmf import CBMF
from repro.simulate.montecarlo import MonteCarloEngine
from repro.utils.validation import check_matrix

__all__ = [
    "CircuitOracle",
    "Oracle",
    "SyntheticOracle",
    "linearized_surrogate",
]


class Oracle:
    """Base oracle: a single-metric simulation endpoint.

    Subclasses implement :meth:`observe`; :meth:`truth` defaults to the
    observation (correct whenever observations are noiseless).
    """

    #: Short name recorded in histories/manifests.
    name: str = "oracle"
    #: Number of knob states.
    n_states: int = 0
    #: Dimension of the normalized sample vector.
    n_variables: int = 0
    #: The performance metric this oracle reports.
    metric: str = "value"

    def observe(self, x: np.ndarray, state: int) -> np.ndarray:
        """Simulate the rows of ``x`` at ``state`` (one value per row)."""
        raise NotImplementedError

    def truth(self, x: np.ndarray, state: int) -> np.ndarray:
        """Noise-free metric values, used only for holdout scoring."""
        return self.observe(x, state)


class CircuitOracle(Oracle):
    """Oracle over a tunable circuit (the production simulation path).

    ``max_retries``/``retry_backoff`` forward to the underlying
    :class:`MonteCarloEngine`: a raising or non-finite evaluation is
    retried up to the budget, then surfaces as
    :class:`~repro.errors.SimulationError` (which the active loop
    quarantines instead of crashing on).
    """

    def __init__(
        self,
        circuit: TunableCircuit,
        metric: str,
        max_retries: int = 0,
        retry_backoff: float = 0.0,
    ) -> None:
        if metric not in circuit.metric_names:
            raise KeyError(
                f"circuit {circuit.name!r} has no metric {metric!r}; "
                f"available: {circuit.metric_names}"
            )
        self.circuit = circuit
        self.metric = metric
        self.name = circuit.name
        self.n_states = circuit.n_states
        self.n_variables = circuit.n_variables
        self._engine = MonteCarloEngine(
            circuit, max_retries=max_retries, retry_backoff=retry_backoff
        )

    def observe(self, x: np.ndarray, state: int) -> np.ndarray:
        """One deterministic circuit evaluation per row of ``x``."""
        return self._engine.evaluate_points(x, state)[self.metric]


class SyntheticOracle(Oracle):
    """Sparse linear ground truth with hash-seeded observation noise."""

    def __init__(
        self,
        coefficients: np.ndarray,
        basis: Optional[BasisDictionary] = None,
        noise_std: float = 0.0,
        metric: str = "value",
        name: str = "synthetic",
    ) -> None:
        coefficients = check_matrix(coefficients, "coefficients")
        if noise_std < 0.0:
            raise ValueError(f"noise_std must be >= 0, got {noise_std}")
        self.coefficients = coefficients
        self.basis = basis or LinearBasis(coefficients.shape[1] - 1)
        if self.basis.n_basis != coefficients.shape[1]:
            raise ValueError(
                f"basis has {self.basis.n_basis} functions, coefficients "
                f"have {coefficients.shape[1]} columns"
            )
        self.noise_std = float(noise_std)
        self.metric = metric
        self.name = name
        self.n_states = coefficients.shape[0]
        self.n_variables = self.basis.n_variables

    def truth(self, x: np.ndarray, state: int) -> np.ndarray:
        """The exact linear response (no noise)."""
        x = check_matrix(x, "x", shape=(None, self.n_variables))
        if not 0 <= state < self.n_states:
            raise IndexError(
                f"state {state} out of range 0..{self.n_states - 1}"
            )
        return self.basis.expand(x) @ self.coefficients[state]

    def observe(self, x: np.ndarray, state: int) -> np.ndarray:
        """Truth plus per-point noise seeded from the point's bytes.

        Hashing ``(x_row, state)`` into the noise generator's seed makes
        the observation a pure function of the query — the synthetic
        analogue of a deterministic simulator with numerical noise — so
        resumed and uninterrupted loops see identical data.
        """
        values = self.truth(x, state)
        if self.noise_std == 0.0:
            return values
        noisy = values.copy()
        for i in range(x.shape[0]):
            digest = hashlib.sha256(
                np.ascontiguousarray(x[i]).tobytes() + bytes([state % 256])
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            noisy[i] += np.random.default_rng(seed).normal(
                0.0, self.noise_std
            )
        return noisy


def linearized_surrogate(
    circuit: TunableCircuit,
    metric: str,
    n_keep: int = 8,
    n_variables: int = 40,
    n_reference_per_state: int = 80,
    noise_std: float = 0.05,
    seed: int = 7,
) -> SyntheticOracle:
    """Sparse linear surrogate of a circuit metric, for acquisition A/B.

    Fits a reference C-BMF model on ``n_reference_per_state`` Monte Carlo
    samples of the real circuit, keeps the ``n_keep`` variables with the
    largest mean absolute sensitivity (plus the per-state intercepts), and
    pads the variable space with inert dimensions up to ``n_variables``.
    The result preserves the circuit's real sensitivity profile and
    cross-state correlation while being exactly linear and exactly sparse
    — the regime where a variance-vs-random comparison measures the
    acquisition strategy rather than basis misspecification.
    """
    if n_keep <= 0 or n_variables < n_keep:
        raise ValueError(
            f"need 0 < n_keep <= n_variables, got {n_keep}/{n_variables}"
        )
    data = MonteCarloEngine(circuit, seed=seed).run(n_reference_per_state)
    full_basis = LinearBasis(circuit.n_variables)
    reference = CBMF(seed=seed).fit(
        full_basis.expand_states(data.inputs()), data.targets(metric)
    )
    full_coef = reference.coef_  # (K, 1 + n_variables), intercept first
    sensitivity = np.abs(full_coef[:, 1:]).mean(axis=0)
    keep = np.sort(np.argsort(-sensitivity)[:n_keep])
    coefficients = np.zeros((circuit.n_states, n_variables + 1))
    coefficients[:, 0] = full_coef[:, 0]
    coefficients[:, 1 : n_keep + 1] = full_coef[:, 1 + keep]
    return SyntheticOracle(
        coefficients,
        basis=LinearBasis(n_variables),
        noise_std=noise_std,
        metric=metric,
        name=f"{circuit.name}-linearized",
    )
