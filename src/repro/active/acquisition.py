"""Acquisition strategies: where the next simulation samples buy the most.

Every strategy answers the same question: given a fitted C-BMF model and a
pool of candidate points per knob state, which ``n_select`` points (across
*all* states jointly) should the next simulation batch spend its budget on?

The uncertainty-driven strategies score candidates with the model's
posterior-predictive variance (``PosteriorPredictor.predict_std``), whose
kernel ``R[k, s]·φᵀΛφ`` already carries the cross-state correlation — a
sample in state k lowers the uncertainty of its correlated neighbours, so
maximizing variance reduction in one state is automatically aware of what
the other states already know. Batch selection is *fantasy-conditioned*:
after each greedy pick the predictor is conditioned on the pick
(:meth:`~repro.core.predictive.PosteriorPredictor.augmented` — exact,
because the predictive variance does not depend on the unknown target), so
the remaining picks avoid redundancy within the batch.

A configurable exploration fraction keeps a slice of every batch random.
Warm-started refits can inherit an over-confident prior from early rounds;
pure variance-chasing under a wrong support then keeps sampling where the
wrong model is unsure, never where it is wrong. The random slice feeds the
EM refinement evidence it did not ask for, which is what breaks those
lock-ins.
"""

from __future__ import annotations

import abc
import logging
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.basis.dictionary import BasisDictionary
from repro.core.cbmf import CBMF
from repro.errors import NumericalError
from repro.simulate.cost import CostModel
from repro.utils.rng import as_generator

logger = logging.getLogger("repro.active")

__all__ = [
    "AcquisitionStrategy",
    "CorrelationAwareAllocation",
    "CostWeightedVariance",
    "RandomAcquisition",
    "VarianceAcquisition",
    "YieldVarianceAcquisition",
]


def _validate_pool(
    model: CBMF, candidates: Sequence[np.ndarray], n_select: int
) -> None:
    expected = getattr(model, "n_states", None)
    if expected is not None and len(candidates) != expected:
        raise ValueError(
            f"expected {expected} candidate pools (one per model state), "
            f"got {len(candidates)}"
        )
    pool_total = sum(c.shape[0] for c in candidates)
    if n_select > pool_total:
        raise ValueError(
            f"cannot select {n_select} from a pool of {pool_total}"
        )


class AcquisitionStrategy(abc.ABC):
    """Base class: rank candidate points for the next simulation batch."""

    #: Registry name of the strategy (recorded in histories/manifests).
    name: str = "base"
    #: Degradation markers of the most recent :meth:`select` call — set
    #: when a strategy silently fell back to a simpler rule (e.g. uniform
    #: allocation on a non-finite variance mass). The active loop copies
    #: this into the round's :class:`~repro.active.history.RoundRecord`
    #: so degraded rounds stay visible in histories and reports.
    last_degraded: Tuple[str, ...] = ()

    def _reset_degradation(self) -> None:
        """Clear the degradation markers (call at the top of select)."""
        self.last_degraded = ()

    def _record_degradation(self, reason: str) -> None:
        """Mark this selection as degraded and log the reason."""
        self.last_degraded = self.last_degraded + (reason,)
        logger.warning(
            "acquisition %s degraded: %s", self.name, reason
        )

    @abc.abstractmethod
    def select(
        self,
        model: CBMF,
        basis: BasisDictionary,
        candidates: Sequence[np.ndarray],
        n_select: int,
        rng: np.random.Generator,
    ) -> List[np.ndarray]:
        """Pick ``n_select`` candidates across all states.

        Parameters
        ----------
        model:
            The current round's fitted estimator.
        basis:
            Dictionary used to expand raw candidates into design rows.
        candidates:
            One raw candidate matrix (n_cand × n_variables) per state.
        n_select:
            Total picks this round, across all states jointly.
        rng:
            Generator for any stochastic tie-breaking/exploration.

        Returns
        -------
        One integer index array per state (possibly empty), summing to
        ``n_select``.
        """

    def describe(self) -> dict:
        """Metadata recorded in histories and registry manifests."""
        return {"strategy": self.name}


class RandomAcquisition(AcquisitionStrategy):
    """Uniform baseline: spread the batch evenly, pick at random.

    This is the paper's fixed-N Monte Carlo collection, recast as an
    incremental loop — the A/B control every uncertainty-driven strategy
    must beat on a samples-at-matched-error basis.
    """

    name = "random"

    def select(self, model, basis, candidates, n_select, rng):
        """Evenly allocate across states, uniform picks within each."""
        rng = as_generator(rng)
        n_states = len(candidates)
        _validate_pool(model, candidates, n_select)
        allocation = np.full(n_states, n_select // n_states, dtype=int)
        extra = rng.permutation(n_states)[: n_select % n_states]
        allocation[extra] += 1
        picks = []
        for k, pool in enumerate(candidates):
            count = min(int(allocation[k]), pool.shape[0])
            picks.append(
                np.sort(rng.choice(pool.shape[0], count, replace=False))
            )
        shortfall = n_select - sum(p.size for p in picks)
        while shortfall > 0:  # pools smaller than the even split
            k = int(rng.integers(n_states))
            remaining = np.setdiff1d(
                np.arange(candidates[k].shape[0]), picks[k]
            )
            if remaining.size:
                picks[k] = np.sort(
                    np.append(picks[k], rng.choice(remaining))
                )
                shortfall -= 1
        return picks


class VarianceAcquisition(AcquisitionStrategy):
    """Greedy posterior-variance maximization, fantasy-conditioned.

    Each pick takes the (state, candidate) pair with the highest latent
    predictive variance, then conditions the predictor on the pick before
    scoring the next one — a submodular-greedy batch that never spends
    two samples on the same unknown. ``explore_fraction`` of every batch
    is drawn uniformly instead (see the module docstring for why).
    """

    name = "variance"

    def __init__(self, explore_fraction: float = 0.25) -> None:
        if not 0.0 <= explore_fraction < 1.0:
            raise ValueError(
                f"explore_fraction must be in [0, 1), got {explore_fraction}"
            )
        self.explore_fraction = explore_fraction

    def describe(self) -> dict:
        """Name plus the exploration fraction."""
        return {
            "strategy": self.name,
            "explore_fraction": self.explore_fraction,
        }

    # -- scoring hook ---------------------------------------------------
    def _state_weight(self, state: int) -> float:
        """Multiplier applied to state ``state``'s variance scores."""
        return 1.0

    def select(self, model, basis, candidates, n_select, rng):
        """Greedy fantasy-conditioned picks plus an exploration slice.

        A numerical breakdown mid-greedy (:class:`NumericalError` from
        the predictor) degrades the rest of the batch to uniform random
        picks, recorded in :attr:`last_degraded`, instead of aborting
        the whole acquisition round.
        """
        self._reset_degradation()
        rng = as_generator(rng)
        n_states = len(candidates)
        _validate_pool(model, candidates, n_select)
        designs = [basis.expand(pool) for pool in candidates]
        chosen: List[List[int]] = [[] for _ in range(n_states)]
        n_explore = int(round(n_select * self.explore_fraction))
        n_greedy = n_select - n_explore

        try:
            predictor = model.predictor
            for _ in range(n_greedy):
                best_score, best_state, best_index = -np.inf, -1, -1
                for k in range(n_states):
                    if not designs[k].shape[0]:
                        continue
                    std = predictor.predict_std(designs[k], k)
                    score = self._state_weight(k) * std**2
                    if chosen[k]:
                        score[np.asarray(chosen[k], dtype=int)] = -np.inf
                    index = int(np.argmax(score))
                    if score[index] > best_score:
                        best_score = float(score[index])
                        best_state, best_index = k, index
                if best_state < 0:
                    break
                chosen[best_state].append(best_index)
                predictor = predictor.augmented(
                    designs[best_state][best_index : best_index + 1],
                    best_state,
                )
        except NumericalError as error:
            self._record_degradation(
                f"random_fill:predict_std_failed({error})"
            )
            n_explore = n_select - sum(len(c) for c in chosen)

        for _ in range(n_explore):
            open_states = [
                k
                for k in range(n_states)
                if len(chosen[k]) < candidates[k].shape[0]
            ]
            if not open_states:
                break
            k = int(rng.choice(open_states))
            remaining = np.setdiff1d(
                np.arange(candidates[k].shape[0]), chosen[k]
            )
            chosen[k].append(int(rng.choice(remaining)))

        return [
            np.sort(np.asarray(indices, dtype=int)) for indices in chosen
        ]


class CostWeightedVariance(VarianceAcquisition):
    """Variance per simulation dollar: scores divided by per-state cost.

    When knob states differ in simulation price (longer transient for
    high-gain states, harmonic balance only for some), the right greedy
    objective is uncertainty reduction *per second*. ``state_costs``
    gives the relative price of each state — a plain sequence, or a
    :class:`~repro.simulate.cost.CostModel` per state whose
    ``seconds_per_sample`` is used. Uniform costs reduce this strategy to
    plain :class:`VarianceAcquisition`.
    """

    name = "cost_weighted"

    def __init__(
        self,
        state_costs: Sequence[Union[float, CostModel]],
        explore_fraction: float = 0.25,
    ) -> None:
        super().__init__(explore_fraction=explore_fraction)
        costs = [
            float(c.seconds_per_sample) if isinstance(c, CostModel)
            else float(c)
            for c in state_costs
        ]
        if not costs or any(c <= 0.0 for c in costs):
            raise ValueError(
                f"state_costs must be positive, got {costs}"
            )
        self.state_costs = costs

    def describe(self) -> dict:
        """Name, exploration fraction, and the per-state cost vector."""
        payload = super().describe()
        payload["state_costs"] = list(self.state_costs)
        return payload

    def _state_weight(self, state: int) -> float:
        """Inverse simulation price of the state."""
        return 1.0 / self.state_costs[state]


class CorrelationAwareAllocation(AcquisitionStrategy):
    """Split the batch across states by uncertainty mass, then pick top-σ.

    A two-phase alternative to the joint greedy: first allocate the round
    budget across the K states proportionally to each state's mean
    posterior-predictive variance over its candidate pool (states whose
    uncertainty is already covered by correlated neighbours get small
    shares — the correlation matrix R enters through ``predict_std``),
    then take the highest-variance candidates within each state. Cheaper
    than fantasy-greedy (K predict_std calls total) and a good fit when
    per-state batches must be dispatched to parallel simulators.
    """

    name = "correlation"

    def select(self, model, basis, candidates, n_select, rng):
        """Variance-mass allocation, then per-state top-variance picks.

        When the variance mass is unusable — the predictor raises
        :class:`NumericalError` or the mass comes back non-finite/zero —
        the allocation degrades to uniform, and the degradation is
        recorded in :attr:`last_degraded` (the loop copies it into the
        round record) instead of passing silently.
        """
        self._reset_degradation()
        rng = as_generator(rng)
        n_states = len(candidates)
        _validate_pool(model, candidates, n_select)
        designs = [basis.expand(pool) for pool in candidates]
        try:
            variances = [
                model.predict_std(designs[k], k) ** 2
                for k in range(n_states)
            ]
        except NumericalError as error:
            self._record_degradation(
                f"uniform_allocation:predict_std_failed({error})"
            )
            variances = [np.zeros(pool.shape[0]) for pool in candidates]
        mass = np.array([float(np.mean(v)) for v in variances])
        if not np.all(np.isfinite(mass)) or mass.sum() <= 0.0:
            if not self.last_degraded:
                self._record_degradation(
                    "uniform_allocation:non_finite_variance_mass"
                )
            mass = np.ones(n_states)
        shares = mass / mass.sum() * n_select
        allocation = np.floor(shares).astype(int)
        remainder = np.argsort(-(shares - allocation))
        for k in remainder[: n_select - int(allocation.sum())]:
            allocation[k] += 1
        # clip to pool sizes, handing overflow to the next-hungriest state
        order = list(np.argsort(-shares))
        for _ in range(n_states):
            overflow = 0
            for k in range(n_states):
                cap = candidates[k].shape[0]
                if allocation[k] > cap:
                    overflow += allocation[k] - cap
                    allocation[k] = cap
            if not overflow:
                break
            for k in order:
                room = candidates[k].shape[0] - allocation[k]
                if room > 0:
                    added = min(room, overflow)
                    allocation[k] += added
                    overflow -= added
                if not overflow:
                    break
        picks = []
        for k in range(n_states):
            top = np.argsort(-variances[k])[: allocation[k]]
            picks.append(np.sort(top.astype(int)))
        return picks


class YieldVarianceAcquisition(AcquisitionStrategy):
    """Target yield-CI width instead of raw predictive variance.

    What gets signed off is the spec-pass probability, not the RMSE —
    so spend samples where *yield* is uncertain. The pass probability at
    a candidate is ``Φ(z)`` with ``z = (bound − μ)/σ_tot`` and
    ``σ_tot² = σ_model² + σ0²``; by the delta method, the model's mean
    uncertainty contributes ``φ(z)²·σ_model²/σ_tot²`` to the variance of
    that probability. The score is this contribution summed over specs:
    it peaks for candidates that are both near a spec boundary (``φ(z)``
    large) *and* model-uncertain (``σ_model`` large), and vanishes for
    points that pass or fail with certainty — exactly the points raw
    variance-chasing wastes budget on. Allocation across states follows
    the two-phase split of :class:`CorrelationAwareAllocation`
    (score-mass shares, then top-score picks within each state).

    Specs are interpreted against the metric the model is fitted on;
    the ``metric`` field of each
    :class:`~repro.applications.yield_estimation.Specification` is
    carried for bookkeeping only.
    """

    name = "yield_variance"

    def __init__(self, specs: Sequence) -> None:
        from repro.applications.yield_estimation import Specification

        parsed = []
        for spec in specs:
            if isinstance(spec, str):
                spec = Specification.parse(spec)
            if not isinstance(spec, Specification):
                raise TypeError(
                    "specs must be Specification objects or "
                    f"'metric<=bound' strings, got {type(spec).__name__}"
                )
            parsed.append(spec)
        if not parsed:
            raise ValueError("at least one specification is required")
        self.specs = parsed

    def describe(self) -> dict:
        """Name plus the spec list driving the scores."""
        return {
            "strategy": self.name,
            "specs": [
                f"{s.metric}{'<=' if s.kind == 'max' else '>='}{s.bound:g}"
                for s in self.specs
            ],
        }

    def _scores(self, predictor, design: np.ndarray, state: int) -> np.ndarray:
        """Delta-method yield-variance contribution of each candidate."""
        from scipy.stats import norm

        mean = predictor.predict_mean(design, state)
        model_var = predictor.predict_std(design, state) ** 2
        total_var = model_var + predictor.noise_var
        score = np.zeros(design.shape[0])
        for spec in self.specs:
            z = (spec.bound - mean) / np.sqrt(total_var)
            score += norm.pdf(z) ** 2 * model_var / total_var
        return score

    def select(self, model, basis, candidates, n_select, rng):
        """Score-mass allocation across states, top-score picks within.

        Degrades to uniform allocation with random picks — recorded in
        :attr:`last_degraded` — when the predictor raises
        :class:`NumericalError` or the score mass is non-finite/zero
        (every candidate certain to pass or fail).
        """
        self._reset_degradation()
        rng = as_generator(rng)
        n_states = len(candidates)
        _validate_pool(model, candidates, n_select)
        designs = [basis.expand(pool) for pool in candidates]
        try:
            predictor = model.predictor
            scores = [
                self._scores(predictor, designs[k], k)
                for k in range(n_states)
            ]
        except NumericalError as error:
            self._record_degradation(
                f"uniform_allocation:yield_score_failed({error})"
            )
            scores = [
                rng.random(pool.shape[0]) for pool in candidates
            ]
        mass = np.array([float(np.mean(s)) for s in scores])
        if not np.all(np.isfinite(mass)) or mass.sum() <= 0.0:
            if not self.last_degraded:
                self._record_degradation(
                    "uniform_allocation:zero_yield_score_mass"
                )
            mass = np.ones(n_states)
            scores = [rng.random(pool.shape[0]) for pool in candidates]
        shares = mass / mass.sum() * n_select
        allocation = np.floor(shares).astype(int)
        remainder = np.argsort(-(shares - allocation))
        for k in remainder[: n_select - int(allocation.sum())]:
            allocation[k] += 1
        order = list(np.argsort(-shares))
        for _ in range(n_states):
            overflow = 0
            for k in range(n_states):
                cap = candidates[k].shape[0]
                if allocation[k] > cap:
                    overflow += allocation[k] - cap
                    allocation[k] = cap
            if not overflow:
                break
            for k in order:
                room = candidates[k].shape[0] - allocation[k]
                if room > 0:
                    added = min(room, overflow)
                    allocation[k] += added
                    overflow -= added
                if not overflow:
                    break
        picks = []
        for k in range(n_states):
            top = np.argsort(-scores[k])[: allocation[k]]
            picks.append(np.sort(top.astype(int)))
        return picks
