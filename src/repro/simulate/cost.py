"""Modeling-cost accounting (paper Tables 1 and 2, cost rows).

The paper's "overall modeling cost" is the transistor-level simulation time
to collect the training samples plus the model-fitting time. Our substrate
evaluates circuits in microseconds, so the simulation component is *modeled*
with the per-sample cost implied by the paper's own tables:

* LNA:   2.72 h / 1120 samples ≈ 8.74 s per sample
* mixer: 17.20 h / 1120 samples ≈ 55.3 s per sample

Fitting time is measured for real on the running machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_integer, check_positive

__all__ = ["CostModel", "ModelingCost", "LNA_COST_MODEL", "MIXER_COST_MODEL"]


@dataclass(frozen=True)
class ModelingCost:
    """Cost breakdown of one modeling run."""

    n_samples: int
    simulation_seconds: float
    fitting_seconds: float

    @property
    def simulation_hours(self) -> float:
        """Simulation component, hours (paper's dominant term)."""
        return self.simulation_seconds / 3600.0

    @property
    def total_seconds(self) -> float:
        """Simulation + fitting, seconds."""
        return self.simulation_seconds + self.fitting_seconds

    @property
    def total_hours(self) -> float:
        """Simulation + fitting, hours (the paper's 'overall cost')."""
        return self.total_seconds / 3600.0


class CostModel:
    """Per-sample simulation cost for one circuit."""

    def __init__(self, seconds_per_sample: float) -> None:
        self.seconds_per_sample = check_positive(
            seconds_per_sample, "seconds_per_sample"
        )

    def cost(self, n_samples: int, fitting_seconds: float) -> ModelingCost:
        """Total modeling cost for ``n_samples`` plus a measured fit time."""
        n_samples = check_integer(n_samples, "n_samples", minimum=0)
        fitting_seconds = check_positive(
            fitting_seconds, "fitting_seconds", strict=False
        )
        return ModelingCost(
            n_samples=n_samples,
            simulation_seconds=n_samples * self.seconds_per_sample,
            fitting_seconds=fitting_seconds,
        )


#: Calibrated to paper Table 1 (2.72 h for 1120 samples).
LNA_COST_MODEL = CostModel(2.72 * 3600.0 / 1120.0)
#: Calibrated to paper Table 2 (17.20 h for 1120 samples).
MIXER_COST_MODEL = CostModel(17.20 * 3600.0 / 1120.0)
