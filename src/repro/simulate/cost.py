"""Modeling-cost accounting (paper Tables 1 and 2, cost rows).

The paper's "overall modeling cost" is the transistor-level simulation time
to collect the training samples plus the model-fitting time. Our substrate
evaluates circuits in microseconds, so the simulation component is *modeled*
with the per-sample cost implied by the paper's own tables:

* LNA:   2.72 h / 1120 samples ≈ 8.74 s per sample
* mixer: 17.20 h / 1120 samples ≈ 55.3 s per sample

Fitting time is measured for real on the running machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.utils.validation import check_integer, check_positive

__all__ = [
    "CostLedger",
    "CostModel",
    "ModelingCost",
    "LNA_COST_MODEL",
    "MIXER_COST_MODEL",
]


@dataclass(frozen=True)
class ModelingCost:
    """Cost breakdown of one modeling run."""

    n_samples: int
    simulation_seconds: float
    fitting_seconds: float

    @property
    def simulation_hours(self) -> float:
        """Simulation component, hours (paper's dominant term)."""
        return self.simulation_seconds / 3600.0

    @property
    def total_seconds(self) -> float:
        """Simulation + fitting, seconds."""
        return self.simulation_seconds + self.fitting_seconds

    @property
    def total_hours(self) -> float:
        """Simulation + fitting, hours (the paper's 'overall cost')."""
        return self.total_seconds / 3600.0


class CostModel:
    """Per-sample simulation cost for one circuit."""

    def __init__(self, seconds_per_sample: float) -> None:
        self.seconds_per_sample = check_positive(
            seconds_per_sample, "seconds_per_sample"
        )

    def cost(self, n_samples: int, fitting_seconds: float) -> ModelingCost:
        """Total modeling cost for ``n_samples`` plus a measured fit time."""
        n_samples = check_integer(n_samples, "n_samples", minimum=0)
        fitting_seconds = check_positive(
            fitting_seconds, "fitting_seconds", strict=False
        )
        return ModelingCost(
            n_samples=n_samples,
            simulation_seconds=n_samples * self.seconds_per_sample,
            fitting_seconds=fitting_seconds,
        )


class CostLedger:
    """Running count of simulations, kept *per knob state*.

    The paper's cost driver is the total simulation count, but an
    acquisition loop also needs the per-state breakdown: cost-weighted
    scoring divides a candidate's utility by the price of simulating its
    state, and the registry manifest of an actively fitted model records
    where the budget actually went. The ledger is a plain counter —
    `record` on every simulation batch, then `modeling_cost` to convert
    into the paper's cost units via a :class:`CostModel`.
    """

    def __init__(self, n_states: int) -> None:
        n_states = check_integer(n_states, "n_states", minimum=1)
        self._counts: List[int] = [0] * n_states

    @property
    def n_states(self) -> int:
        """Number of knob states tracked."""
        return len(self._counts)

    @property
    def per_state(self) -> Tuple[int, ...]:
        """Simulation count of each state."""
        return tuple(self._counts)

    @property
    def total(self) -> int:
        """Total simulations across all states."""
        return sum(self._counts)

    def record(self, state: int, n_samples: int = 1) -> None:
        """Count ``n_samples`` simulations against ``state``."""
        if not 0 <= state < len(self._counts):
            raise IndexError(
                f"state {state} out of range 0..{len(self._counts) - 1}"
            )
        self._counts[state] += check_integer(
            n_samples, "n_samples", minimum=0
        )

    def modeling_cost(
        self, cost_model: CostModel, fitting_seconds: float = 0.0
    ) -> ModelingCost:
        """The ledger's total as a paper-style :class:`ModelingCost`."""
        return cost_model.cost(self.total, fitting_seconds)

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {"per_state": list(self._counts)}

    @classmethod
    def from_dict(cls, payload: dict) -> "CostLedger":
        """Rebuild a ledger from :meth:`to_dict` output."""
        counts = payload["per_state"]
        ledger = cls(len(counts))
        for state, count in enumerate(counts):
            ledger.record(state, int(count))
        return ledger

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CostLedger):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostLedger(per_state={self.per_state})"


#: Calibrated to paper Table 1 (2.72 h for 1120 samples).
LNA_COST_MODEL = CostModel(2.72 * 3600.0 / 1120.0)
#: Calibrated to paper Table 2 (17.20 h for 1120 samples).
MIXER_COST_MODEL = CostModel(17.20 * 3600.0 / 1120.0)
