"""Dataset containers for multi-state performance data.

A ``Dataset`` holds, for each knob state ``k``, the normalized sample
matrix ``X_k`` (N_k × n_variables) and one target vector per performance
metric — exactly the ``(x_k^(n), y_k^(n))`` pairs of the paper. Helpers
cover train/test handling, per-state subsetting (for sample-count sweeps)
and npz round-tripping so expensive simulations can be cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_matrix, check_vector

__all__ = ["StateData", "Dataset"]


@dataclass
class StateData:
    """Samples of one knob state: inputs and per-metric targets."""

    x: np.ndarray
    y: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        self.x = check_matrix(self.x, "x")
        if not self.y:
            raise ValueError("y must contain at least one metric")
        n = self.x.shape[0]
        self.y = {
            metric: check_vector(values, f"y[{metric!r}]", length=n)
            for metric, values in self.y.items()
        }

    @property
    def n_samples(self) -> int:
        """Number of samples in this state."""
        return self.x.shape[0]

    def head(self, n: int) -> "StateData":
        """The first ``n`` samples."""
        if not 0 < n <= self.n_samples:
            raise ValueError(
                f"n must be in 1..{self.n_samples}, got {n}"
            )
        return StateData(
            x=self.x[:n].copy(),
            y={metric: values[:n].copy() for metric, values in self.y.items()},
        )

    def tail(self, n: int) -> "StateData":
        """The last ``n`` samples."""
        if not 0 < n <= self.n_samples:
            raise ValueError(
                f"n must be in 1..{self.n_samples}, got {n}"
            )
        return StateData(
            x=self.x[-n:].copy(),
            y={metric: values[-n:].copy() for metric, values in self.y.items()},
        )


class Dataset:
    """Multi-state dataset: one ``StateData`` per knob configuration."""

    def __init__(
        self,
        circuit_name: str,
        states: Sequence[StateData],
        metric_names: Optional[Tuple[str, ...]] = None,
    ) -> None:
        if not states:
            raise ValueError("dataset needs at least one state")
        self.circuit_name = circuit_name
        self.states: List[StateData] = list(states)

        n_vars = self.states[0].x.shape[1]
        metrics = tuple(sorted(self.states[0].y)) if metric_names is None \
            else tuple(metric_names)
        for index, state in enumerate(self.states):
            if state.x.shape[1] != n_vars:
                raise ValueError(
                    f"state {index} has {state.x.shape[1]} variables, "
                    f"expected {n_vars}"
                )
            missing = set(metrics) - set(state.y)
            if missing:
                raise ValueError(
                    f"state {index} is missing metrics {sorted(missing)}"
                )
        self.metric_names = metrics
        self.n_variables = n_vars

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of knob states K."""
        return len(self.states)

    @property
    def n_samples_per_state(self) -> Tuple[int, ...]:
        """Sample count of each state."""
        return tuple(state.n_samples for state in self.states)

    @property
    def n_samples_total(self) -> int:
        """Total samples across all states (the paper's cost driver)."""
        return sum(self.n_samples_per_state)

    def inputs(self) -> List[np.ndarray]:
        """Per-state input matrices ``[X_1, ..., X_K]``."""
        return [state.x for state in self.states]

    def targets(self, metric: str) -> List[np.ndarray]:
        """Per-state target vectors of one metric."""
        if metric not in self.metric_names:
            raise KeyError(
                f"unknown metric {metric!r}; have {self.metric_names}"
            )
        return [state.y[metric] for state in self.states]

    # ------------------------------------------------------------------
    def head(self, n_per_state: int) -> "Dataset":
        """First ``n_per_state`` samples of every state (training subsets)."""
        return Dataset(
            self.circuit_name,
            [state.head(n_per_state) for state in self.states],
            self.metric_names,
        )

    def split(self, n_train_per_state: int) -> Tuple["Dataset", "Dataset"]:
        """Split every state into (train, test) at ``n_train_per_state``."""
        n_min = min(self.n_samples_per_state)
        if not 0 < n_train_per_state < n_min:
            raise ValueError(
                f"n_train_per_state must be in 1..{n_min - 1}, "
                f"got {n_train_per_state}"
            )
        train = Dataset(
            self.circuit_name,
            [state.head(n_train_per_state) for state in self.states],
            self.metric_names,
        )
        test = Dataset(
            self.circuit_name,
            [
                state.tail(state.n_samples - n_train_per_state)
                for state in self.states
            ],
            self.metric_names,
        )
        return train, test

    @staticmethod
    def concat(first: "Dataset", second: "Dataset") -> "Dataset":
        """Concatenate two datasets state-wise (same circuit/metrics).

        Appends ``second``'s samples after ``first``'s in every state —
        how an adaptive-sampling loop grows its training set.
        """
        if first.circuit_name != second.circuit_name:
            raise ValueError(
                f"circuit mismatch: {first.circuit_name!r} vs "
                f"{second.circuit_name!r}"
            )
        if first.metric_names != second.metric_names:
            raise ValueError("datasets disagree on metrics")
        if first.n_states != second.n_states:
            raise ValueError(
                f"state-count mismatch: {first.n_states} vs {second.n_states}"
            )
        states = []
        for state_a, state_b in zip(first.states, second.states):
            states.append(
                StateData(
                    x=np.vstack([state_a.x, state_b.x]),
                    y={
                        metric: np.concatenate(
                            [state_a.y[metric], state_b.y[metric]]
                        )
                        for metric in first.metric_names
                    },
                )
            )
        return Dataset(first.circuit_name, states, first.metric_names)

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialize to a compressed ``.npz`` file (atomically).

        The payload is written to a sibling ``.tmp`` file and renamed
        into place, so a crash mid-write can never leave a truncated
        file under the final name.
        """
        payload = {
            "circuit_name": np.array(self.circuit_name),
            "metric_names": np.array(list(self.metric_names)),
            "n_states": np.array(self.n_states),
        }
        for k, state in enumerate(self.states):
            payload[f"x_{k}"] = state.x
            for metric in self.metric_names:
                payload[f"y_{k}_{metric}"] = state.y[metric]
        path = Path(path)
        tmp_path = path.with_name(path.name + ".tmp")
        # An open handle sidesteps numpy's automatic ".npz" suffixing.
        with open(tmp_path, "wb") as handle:
            np.savez_compressed(handle, **payload)
        tmp_path.replace(path)

    @classmethod
    def load(cls, path) -> "Dataset":
        """Load a dataset previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            circuit_name = str(data["circuit_name"])
            metric_names = tuple(str(m) for m in data["metric_names"])
            n_states = int(data["n_states"])
            states = [
                StateData(
                    x=data[f"x_{k}"],
                    y={
                        metric: data[f"y_{k}_{metric}"]
                        for metric in metric_names
                    },
                )
                for k in range(n_states)
            ]
        return cls(circuit_name, states, metric_names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.circuit_name!r}, K={self.n_states}, "
            f"n_vars={self.n_variables}, "
            f"N={self.n_samples_per_state[0]}/state, "
            f"metrics={list(self.metric_names)})"
        )
