"""Monte Carlo 'simulation' layer.

Plays the role of the paper's transistor-level SPICE Monte Carlo: draws
process samples, evaluates a tunable circuit over its states, and accounts
for the (simulated) simulation cost.
"""

from repro.simulate.cost import CostLedger, CostModel, ModelingCost
from repro.simulate.dataset import Dataset, StateData
from repro.simulate.montecarlo import MonteCarloEngine

__all__ = [
    "CostLedger",
    "CostModel",
    "ModelingCost",
    "Dataset",
    "StateData",
    "MonteCarloEngine",
]
