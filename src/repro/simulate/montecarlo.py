"""Monte Carlo engine: the stand-in for transistor-level MC simulation."""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.circuits.base import TunableCircuit
from repro.errors import SimulationError
from repro.simulate.dataset import Dataset, StateData
from repro.utils.rng import SeedLike, spawn_generators
from repro.utils.validation import check_integer, check_matrix
from repro.variation.sampling import latin_hypercube, standard_normal_samples

__all__ = ["MonteCarloEngine"]

_SAMPLERS = {
    "mc": standard_normal_samples,
    "lhs": latin_hypercube,
}


class MonteCarloEngine:
    """Draws process samples and evaluates a tunable circuit over states.

    Parameters
    ----------
    circuit:
        The circuit under 'simulation'.
    seed:
        Seed for reproducible sampling. Each state gets an independent
        child generator, so datasets are stable under changes to the state
        count of *other* runs.
    sampler:
        ``"mc"`` (default): i.i.d. standard normal, matching the paper's
        transistor-level Monte Carlo. ``"lhs"``: Latin-hypercube with
        normal marginals — better space-filling for small *training* sets
        (do not use for the test set, whose role is to estimate the true
        MC error).
    max_retries:
        How many times a raising or non-finite circuit evaluation is
        retried (with exponential backoff when ``retry_backoff > 0``)
        before :class:`~repro.errors.SimulationError` is raised naming
        the state and row. A real simulator can fail transiently; the
        analytical circuits are deterministic, so the default of 0 only
        turns silent NaN/Inf results into loud errors.
    retry_backoff:
        Base sleep in seconds between retries, doubled per attempt.
    """

    def __init__(
        self,
        circuit: TunableCircuit,
        seed: SeedLike = None,
        sampler: str = "mc",
        max_retries: int = 0,
        retry_backoff: float = 0.0,
    ) -> None:
        if sampler not in _SAMPLERS:
            raise ValueError(
                f"sampler must be one of {sorted(_SAMPLERS)}, got {sampler!r}"
            )
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        self.circuit = circuit
        self.sampler = sampler
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self._seed = seed
        self._draw = _SAMPLERS[sampler]

    def _evaluate_with_retry(
        self, evaluate, state_label, row: int
    ) -> Dict[str, float]:
        """One simulation with retry/backoff; raises ``SimulationError``.

        ``evaluate`` is a no-argument closure over the sample point; a
        raising call or a non-finite metric value consumes one attempt.
        """
        failure = "no attempt made"
        for attempt in range(self.max_retries + 1):
            if attempt and self.retry_backoff > 0:
                time.sleep(self.retry_backoff * 2 ** (attempt - 1))
            try:
                values = evaluate()
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                failure = f"{type(error).__name__}: {error}"
                continue
            bad = [
                metric for metric, value in values.items()
                if not np.isfinite(value)
            ]
            if not bad:
                return values
            failure = f"non-finite metrics {bad}"
        raise SimulationError(
            f"simulation of {self.circuit.name!r} failed at state "
            f"{state_label}, row {row} after {self.max_retries + 1} "
            f"attempt(s): {failure}"
        )

    def run(
        self,
        n_samples_per_state: int,
        shared_samples: Optional[bool] = None,
        progress: Optional[callable] = None,
    ) -> Dataset:
        """Simulate ``n_samples_per_state`` per knob state.

        With ``shared_samples=True`` every state is evaluated on the *same*
        process samples (one die measured at all knob settings — how a
        tunable circuit is actually characterized post-silicon); ``False``
        draws fresh samples per state, matching the paper's formulation
        where each state has its own sampling set. The default ``None``
        defers to the circuit's ``shared_samples`` class attribute
        (False for the paper circuits, True for sweep-style circuits).
        """
        n = check_integer(n_samples_per_state, "n_samples_per_state", minimum=1)
        circuit = self.circuit
        if shared_samples is None:
            shared_samples = bool(getattr(circuit, "shared_samples", False))
        generators = spawn_generators(self._seed, circuit.n_states)
        if shared_samples:
            shared = self._draw(n, circuit.n_variables, generators[0])

        states = []
        for state, generator in zip(circuit.states, generators):
            if shared_samples:
                x = shared
            else:
                x = self._draw(n, circuit.n_variables, generator)
            rows = {metric: np.empty(n) for metric in circuit.metric_names}
            for i in range(n):
                sample = circuit.process_model.realize(x[i])
                values = self._evaluate_with_retry(
                    lambda: circuit.evaluate(sample, state),
                    state.index,
                    i,
                )
                for metric in circuit.metric_names:
                    rows[metric][i] = values[metric]
            states.append(StateData(x=x.copy(), y=rows))
            if progress is not None:
                progress(state.index, circuit.n_states)
        return Dataset(circuit.name, states, circuit.metric_names)

    def evaluate_points(
        self, x: np.ndarray, state: int
    ) -> Dict[str, np.ndarray]:
        """Simulate *given* sample points at one knob state.

        The active-learning path: an acquisition strategy chooses the
        points, this evaluates exactly those — no sampling involved, so
        the result is deterministic in ``x`` regardless of the engine's
        seed. Returns one value vector per metric.
        """
        x = check_matrix(
            x, "x", shape=(None, self.circuit.n_variables)
        )
        if not 0 <= state < self.circuit.n_states:
            raise IndexError(
                f"state {state} out of range 0..{self.circuit.n_states - 1}"
            )
        knob = self.circuit.states[state]
        rows = {
            metric: np.empty(x.shape[0])
            for metric in self.circuit.metric_names
        }
        for i in range(x.shape[0]):
            values = self._evaluate_with_retry(
                lambda: self.circuit.evaluate_x(x[i], knob), state, i
            )
            for metric in self.circuit.metric_names:
                rows[metric][i] = values[metric]
        return rows
