"""Versioned on-disk model registry with manifests and checksums.

Layout — one directory per model name, one subdirectory per version::

    <root>/
      lna/
        v1/
          manifest.json        # kind, metrics, basis spec, sha256 per file
          nf_db.npz            # one FrozenModel per metric
          gain_db.npz
        v2/ ...

Artifacts are addressed by ``name@vN`` keys (``name`` or ``name@latest``
resolve to the newest version). ``manifest.json`` records everything
needed to rebuild and trust the artifact: the metric list, state/basis
dimensions, the basis reconstruction spec (``BasisDictionary.spec``) and
a sha256 checksum per file, verified on load so silent corruption or
tampering raises :class:`RegistryError` instead of serving bad numbers.

The module-level :func:`write_model_dir` / :func:`read_model_dir` are the
shared serialization core: ``PerformanceModelSet.save_dir/load_dir`` and
``ModelRegistry.push/load`` all route through them, so a registry version
directory *is* a valid ``save_dir`` directory and vice versa.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.basis import BasisDictionary, basis_from_spec
from repro.core.frozen import FrozenModel

__all__ = [
    "MANIFEST_NAME",
    "ModelRegistry",
    "RegistryEntry",
    "RegistryError",
    "read_model_dir",
    "write_model_dir",
]

MANIFEST_NAME = "manifest.json"
_MANIFEST_SCHEMA = 1
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class RegistryError(RuntimeError):
    """A registry artifact is missing, malformed or fails verification."""


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Shared model-directory serialization (used by PerformanceModelSet too).
# ----------------------------------------------------------------------
def write_model_dir(
    directory,
    models: Mapping[str, FrozenModel],
    basis: Optional[BasisDictionary] = None,
    kind: str = "modelset",
    extra: Optional[dict] = None,
) -> dict:
    """Write frozen models + ``manifest.json`` into ``directory``.

    One ``<metric>.npz`` per model, then a manifest recording kind,
    metrics, dimensions, the basis spec (when the basis provides one)
    and a sha256 checksum per file. Returns the manifest dict.
    """
    if not models:
        raise ValueError("at least one model is required")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files: Dict[str, str] = {}
    for metric, frozen in sorted(models.items()):
        filename = f"{metric}.npz"
        frozen.save(directory / filename)
        files[filename] = _sha256(directory / filename)
    first = next(iter(models.values()))
    basis_spec = None
    if basis is not None:
        try:
            basis_spec = basis.spec()
        except NotImplementedError:
            basis_spec = None
    manifest = {
        "schema": _MANIFEST_SCHEMA,
        "kind": kind,
        "metrics": sorted(models),
        "n_states": int(first.coef_.shape[0]),
        "n_basis": int(first.coef_.shape[1]),
        "basis": basis_spec,
        "files": files,
        "created_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
    }
    if extra:
        manifest.update(extra)
    with open(directory / MANIFEST_NAME, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


def read_model_dir(
    directory, verify: bool = True
) -> Tuple[Dict[str, FrozenModel], Optional[BasisDictionary], Optional[dict]]:
    """Load every frozen model under ``directory``.

    With a manifest present, loads exactly the manifest's file list,
    verifies each sha256 checksum (unless ``verify=False``) and rebuilds
    the basis from its stored spec. Without one (pre-registry layout),
    falls back to globbing ``*.npz`` and returns ``basis=None``.
    Returns ``(models, basis_or_None, manifest_or_None)``.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    models: Dict[str, FrozenModel] = {}
    if manifest_path.exists():
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        for filename, expected in sorted(manifest.get("files", {}).items()):
            path = directory / filename
            if not path.exists():
                raise RegistryError(
                    f"manifest lists {filename} but it is missing "
                    f"under {directory}"
                )
            if verify:
                actual = _sha256(path)
                if actual != expected:
                    raise RegistryError(
                        f"checksum mismatch for {path}: manifest says "
                        f"{expected[:12]}…, file hashes to {actual[:12]}…"
                    )
            frozen = FrozenModel.load(path)
            models[frozen.metric or path.stem] = frozen
        basis = None
        if manifest.get("basis") is not None:
            basis = basis_from_spec(manifest["basis"])
        return models, basis, manifest
    for path in sorted(directory.glob("*.npz")):
        frozen = FrozenModel.load(path)
        models[frozen.metric or path.stem] = frozen
    return models, None, None


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegistryEntry:
    """One resolved ``name@version`` artifact and its manifest."""

    name: str
    version: int
    path: Path
    manifest: dict

    @property
    def key(self) -> str:
        """Canonical ``name@vN`` key of this entry."""
        return f"{self.name}@v{self.version}"

    @property
    def kind(self) -> str:
        """Artifact kind: ``"modelset"`` or ``"frozen"``."""
        return str(self.manifest.get("kind", "modelset"))

    @property
    def metrics(self) -> Tuple[str, ...]:
        """Metric names stored in this artifact."""
        return tuple(self.manifest.get("metrics", ()))


class ModelRegistry:
    """Versioned store of frozen performance models under one root dir.

    ``push`` accepts a fitted :class:`~repro.modelset.PerformanceModelSet`
    or a single :class:`~repro.core.frozen.FrozenModel`; versions
    auto-increment per name. ``load`` inverts it, verifying checksums.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- key handling ---------------------------------------------------
    def resolve(self, key: str) -> Tuple[str, int]:
        """Split ``name[@vN|@latest]`` into ``(name, version)``.

        A bare name or ``@latest`` resolves to the newest version.
        """
        name, _, tag = str(key).partition("@")
        if not _NAME_PATTERN.match(name):
            raise RegistryError(f"invalid model name: {name!r}")
        if tag in ("", "latest"):
            return name, self.latest(name)
        match = re.fullmatch(r"v?(\d+)", tag)
        if not match:
            raise RegistryError(
                f"invalid version tag {tag!r} in key {key!r}; "
                "expected 'vN', 'N' or 'latest'"
            )
        return name, int(match.group(1))

    # -- queries --------------------------------------------------------
    def list_models(self) -> List[str]:
        """All model names with at least one pushed version."""
        return sorted(
            child.name
            for child in self.root.iterdir()
            if child.is_dir() and self.versions(child.name)
        )

    def versions(self, name: str) -> List[int]:
        """Sorted version numbers pushed under ``name``."""
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        found = []
        for child in model_dir.iterdir():
            match = re.fullmatch(r"v(\d+)", child.name)
            if match and (child / MANIFEST_NAME).exists():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest(self, name: str) -> int:
        """Newest version number of ``name`` (raises if none pushed)."""
        versions = self.versions(name)
        if not versions:
            raise RegistryError(f"no versions of {name!r} in {self.root}")
        return versions[-1]

    def entry(self, key: str) -> RegistryEntry:
        """Resolve a key and read its manifest (no artifact loading)."""
        name, version = self.resolve(key)
        path = self.root / name / f"v{version}"
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise RegistryError(f"no entry {name}@v{version} in {self.root}")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        return RegistryEntry(
            name=name, version=version, path=path, manifest=manifest
        )

    def list_entries(self) -> List[RegistryEntry]:
        """Every (name, version) entry in the registry, sorted."""
        return [
            self.entry(f"{name}@v{version}")
            for name in self.list_models()
            for version in self.versions(name)
        ]

    # -- write path -----------------------------------------------------
    def _claim_version(
        self, name: str, version: Optional[int]
    ) -> Tuple[Path, int]:
        """Atomically allocate a version directory for one push.

        The ``mkdir`` (no ``exist_ok``) is the allocation: whichever
        pusher creates ``vN`` first owns that number. Auto-increment
        pushes that lose the race simply retry with the next number;
        an explicit version that is already claimed — even by a crashed
        push that never wrote its manifest — is refused (versions are
        immutable, and a half-written directory is not distinguishable
        from an in-flight push).
        """
        (self.root / name).mkdir(parents=True, exist_ok=True)
        auto = version is None
        existing = self.versions(name)
        if auto:
            candidate = (existing[-1] + 1) if existing else 1
        else:
            candidate = int(version)
        while True:
            path = self.root / name / f"v{candidate}"
            try:
                path.mkdir()
            except FileExistsError:
                if not auto:
                    raise RegistryError(
                        f"{name}@v{candidate} already exists; versions "
                        "are immutable"
                    ) from None
                candidate += 1
                continue
            return path, candidate

    def push(
        self,
        name: str,
        model,
        version: Optional[int] = None,
        extra: Optional[dict] = None,
    ) -> RegistryEntry:
        """Store a model under ``name``, returning the new entry.

        ``model`` is a ``PerformanceModelSet`` (kind ``modelset``, one
        npz per metric plus the basis spec) or a ``FrozenModel`` (kind
        ``frozen``, a single npz and no basis). Versions auto-increment;
        an explicit ``version`` that already exists is refused.

        ``extra`` merges caller metadata into the manifest — e.g. the
        acquisition provenance an active-learning fit records. The
        reserved keys (``name``, ``version`` and the core manifest
        fields) cannot be overridden.

        Concurrent pushes under one name are safe: the version number is
        allocated by *atomically creating* the ``vN`` directory
        (``mkdir`` without ``exist_ok``), not by listing-then-writing,
        so two racing auto-increment pushes mint distinct versions
        instead of clobbering each other's artifacts.
        """
        if not _NAME_PATTERN.match(name):
            raise RegistryError(f"invalid model name: {name!r}")
        if isinstance(model, FrozenModel):
            models = {model.metric or "value": model}
            basis, kind = None, "frozen"
        elif hasattr(model, "freeze") and hasattr(model, "basis"):
            models, basis, kind = model.freeze(), model.basis, "modelset"
        else:
            raise TypeError(
                "push expects a PerformanceModelSet or FrozenModel, "
                f"got {type(model).__name__}"
            )
        reserved = {
            "schema", "kind", "metrics", "n_states", "n_basis",
            "basis", "files", "created_at", "name", "version",
        }
        merged = dict(extra) if extra else {}
        clash = reserved & set(merged)
        if clash:
            raise RegistryError(
                f"extra metadata may not override manifest keys "
                f"{sorted(clash)}"
            )
        path, version = self._claim_version(name, version)
        merged.update({"name": name, "version": int(version)})
        manifest = write_model_dir(
            path,
            models,
            basis=basis,
            kind=kind,
            extra=merged,
        )
        return RegistryEntry(
            name=name, version=int(version), path=path, manifest=manifest
        )

    # -- read path ------------------------------------------------------
    def load_models(
        self, key: str, verify: bool = True
    ) -> Tuple[RegistryEntry, Dict[str, FrozenModel], Optional[BasisDictionary]]:
        """Load an entry's frozen models (checksum-verified) and basis."""
        entry = self.entry(key)
        models, basis, _ = read_model_dir(entry.path, verify=verify)
        if not models:
            raise RegistryError(f"entry {entry.key} holds no models")
        return entry, models, basis

    def load(self, key: str, verify: bool = True):
        """Load an artifact: a ``PerformanceModelSet`` or ``FrozenModel``.

        ``modelset`` entries come back as a ``PerformanceModelSet``
        (basis rebuilt from the manifest spec); ``frozen`` entries as
        the bare ``FrozenModel``.
        """
        entry, models, basis = self.load_models(key, verify=verify)
        if entry.kind == "frozen":
            if len(models) != 1:
                raise RegistryError(
                    f"frozen entry {entry.key} holds {len(models)} models"
                )
            return next(iter(models.values()))
        if basis is None:
            raise RegistryError(
                f"entry {entry.key} has no basis spec; cannot rebuild a "
                "PerformanceModelSet (load_models() returns the raw parts)"
            )
        from repro.modelset import PerformanceModelSet

        return PerformanceModelSet(models, basis)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry(root={str(self.root)!r})"
