"""Model serving: versioned registry, micro-batching engine, service.

A fitted performance model's life after ``fit`` lives here:

* :class:`ModelRegistry` — versioned on-disk store of frozen models
  (``name@vN`` keys, JSON manifests, sha256 integrity checks).
* :class:`PredictionEngine` — coalesces single and bulk requests into
  one vectorized matmul per (model, state) group, with an LRU cache on
  quantized inputs.
* :class:`ServingMetrics` — counters and latency quantiles behind a
  ``snapshot()`` dict.
* :class:`ModelService` — the thread-safe façade wiring the three
  together, with graceful hot-swap of model versions under load.

    registry = ModelRegistry("models/")
    registry.push("lna", PerformanceModelSet.fit_dataset(train))
    service = ModelService(registry)
    service.load("lna@latest")
    service.predict("lna", x, state=3).values   # {"nf_db": ..., ...}
"""

from repro.serving.engine import (
    BatchConfig,
    CacheConfig,
    PredictionEngine,
    ServedModel,
)
from repro.serving.metrics import ServingMetrics, aggregate_snapshots
from repro.serving.registry import (
    ModelRegistry,
    RegistryEntry,
    RegistryError,
    read_model_dir,
    write_model_dir,
)
from repro.serving.requests import (
    PredictionRequest,
    PredictionResult,
    quantize_key,
)
from repro.serving.service import ModelService

__all__ = [
    "BatchConfig",
    "CacheConfig",
    "ModelRegistry",
    "ModelService",
    "PredictionEngine",
    "PredictionRequest",
    "PredictionResult",
    "RegistryEntry",
    "RegistryError",
    "ServedModel",
    "ServingMetrics",
    "aggregate_snapshots",
    "quantize_key",
    "read_model_dir",
    "write_model_dir",
]
