"""Lightweight serving telemetry: counters, batch sizes, latency quantiles.

``ServingMetrics`` is a thread-safe bag of counters the engine and
service update on the hot path (a lock plus integer adds — cheap enough
for a micro-benchmark loop) and a ``snapshot()`` that folds them into a
plain dict: request/batch counts, cache hit rate, batch-size stats and
p50/p95 latency. Latencies go into a bounded ring so a long-lived
service cannot grow without bound.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["ServingMetrics", "aggregate_snapshots"]

#: Snapshot fields that sum across processes.
_ADDITIVE_FIELDS = (
    "requests",
    "cache_hits",
    "cache_misses",
    "batches",
    "batched_rows",
    "hot_swaps",
    "swap_failures",
)


def aggregate_snapshots(
    snapshots: Sequence[Dict[str, Optional[float]]],
) -> Dict[str, Optional[float]]:
    """Fold per-process :meth:`ServingMetrics.snapshot` dicts into one.

    Each shard worker owns a private ``PredictionEngine`` whose LRU
    cache and ``ServingMetrics`` counters live in that process only —
    a cluster report that showed a single shard's snapshot would
    under-count every other shard's traffic. This helper sums the
    additive counters (requests, cache hits/misses, batches, rows,
    swaps) across *all* shards and recomputes the derived rates from
    the sums. Latency percentiles are **not** mergeable from snapshots
    (the raw windows stay in the workers), so ``p50_latency_ms`` /
    ``p95_latency_ms`` come back ``None`` — read per-shard percentiles
    from the individual snapshots instead.
    """
    out: Dict[str, Optional[float]] = {
        field: 0 for field in _ADDITIVE_FIELDS
    }
    max_batch = 0
    for snapshot in snapshots:
        for field in _ADDITIVE_FIELDS:
            out[field] += int(snapshot.get(field) or 0)
        max_batch = max(max_batch, int(snapshot.get("max_batch_size") or 0))
    lookups = out["cache_hits"] + out["cache_misses"]
    out["cache_hit_rate"] = out["cache_hits"] / lookups if lookups else 0.0
    out["mean_batch_size"] = (
        out["batched_rows"] / out["batches"] if out["batches"] else 0.0
    )
    out["max_batch_size"] = max_batch
    out["p50_latency_ms"] = None
    out["p95_latency_ms"] = None
    out["n_processes"] = len(snapshots)
    return out


class ServingMetrics:
    """Thread-safe counters and histograms for the serving subsystem.

    Parameters
    ----------
    latency_window:
        How many of the most recent per-request latencies to keep for
        the p50/p95 estimates (a sliding window, not a full history).
    """

    def __init__(self, latency_window: int = 10_000) -> None:
        if latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=latency_window)
        self._requests = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._batches = 0
        self._batched_rows = 0
        self._max_batch = 0
        self._hot_swaps = 0
        self._swap_failures = 0

    # ------------------------------------------------------------------
    def record_request(
        self, latency_s: float, cache_hit: bool, count: int = 1
    ) -> None:
        """Count ``count`` requests sharing one observed latency."""
        with self._lock:
            self._requests += count
            if cache_hit:
                self._cache_hits += count
            else:
                self._cache_misses += count
            self._latencies.append(float(latency_s))

    def record_batch(self, size: int) -> None:
        """Count one coalesced matmul over ``size`` unique rows."""
        with self._lock:
            self._batches += 1
            self._batched_rows += int(size)
            self._max_batch = max(self._max_batch, int(size))

    def record_hot_swap(self) -> None:
        """Count one model-version swap."""
        with self._lock:
            self._hot_swaps += 1

    def record_swap_failure(self) -> None:
        """Count one failed hot swap (previous version kept serving)."""
        with self._lock:
            self._swap_failures += 1

    @property
    def swap_failures(self) -> int:
        """Hot swaps that failed and fell back to the previous version."""
        with self._lock:
            return self._swap_failures

    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        """Total requests served so far."""
        with self._lock:
            return self._requests

    @property
    def cache_hits(self) -> int:
        """Requests answered from the cache (or in-flight coalescing)."""
        with self._lock:
            return self._cache_hits

    def cache_hit_rate(self) -> float:
        """Fraction of requests answered without a fresh matmul."""
        with self._lock:
            total = self._cache_hits + self._cache_misses
            return self._cache_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Optional[float]]:
        """Fold every counter into one plain, JSON-friendly dict."""
        with self._lock:
            latencies = np.array(self._latencies, dtype=float)
            batches = self._batches
            out: Dict[str, Optional[float]] = {
                "requests": self._requests,
                "cache_hits": self._cache_hits,
                "cache_misses": self._cache_misses,
                "cache_hit_rate": (
                    self._cache_hits
                    / (self._cache_hits + self._cache_misses)
                    if (self._cache_hits + self._cache_misses)
                    else 0.0
                ),
                "batches": batches,
                "batched_rows": self._batched_rows,
                "mean_batch_size": (
                    self._batched_rows / batches if batches else 0.0
                ),
                "max_batch_size": self._max_batch,
                "hot_swaps": self._hot_swaps,
                "swap_failures": self._swap_failures,
            }
        if latencies.size:
            out["p50_latency_ms"] = float(
                np.percentile(latencies, 50.0) * 1e3
            )
            out["p95_latency_ms"] = float(
                np.percentile(latencies, 95.0) * 1e3
            )
        else:
            out["p50_latency_ms"] = None
            out["p95_latency_ms"] = None
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServingMetrics(requests={self.requests})"
