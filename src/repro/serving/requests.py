"""Request/response types and cache-key quantization for the serving layer.

A prediction request is a raw sample vector ``x`` plus a knob ``state``;
the engine answers with one value per served metric. Cache keys quantize
``x`` so that float noise below the configured resolution maps to the
same bucket — two requests that agree to ``decimals`` digits share one
cached prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = ["PredictionRequest", "PredictionResult", "quantize_key"]


def quantize_key(x: np.ndarray, state: int, decimals: int) -> Tuple[int, bytes]:
    """Hashable cache key for a request: the state plus quantized bytes.

    ``np.round`` to ``decimals`` digits collapses sub-resolution float
    noise (and signed zeros) into one bucket; ``tobytes`` then gives an
    exact, hashable fingerprint of the rounded vector.
    """
    rounded = np.round(np.asarray(x, dtype=float), decimals) + 0.0
    return (int(state), rounded.tobytes())


@dataclass(frozen=True)
class PredictionRequest:
    """One inference request: sample ``x`` at knob ``state`` of ``model``.

    ``model`` names a registry entry served by the :class:`ModelService`;
    the engine itself is handed the resolved model object and ignores it.
    """

    x: np.ndarray
    state: int
    model: str = ""


@dataclass
class PredictionResult:
    """Engine answer for one request.

    ``values`` maps metric name to the predicted float. ``cached`` is
    True when the answer came from the LRU cache (or from coalescing
    with an identical in-flight request) rather than a fresh matmul.
    ``version`` records which model version produced the numbers, so
    hot-swap tests can assert old-or-new atomicity.
    """

    values: Dict[str, float] = field(default_factory=dict)
    cached: bool = False
    version: int = 0
