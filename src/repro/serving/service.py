"""Thread-safe serving façade: registry + engine + metrics in one handle.

``ModelService`` is what an application embeds: it resolves ``name@vN``
keys against a :class:`~repro.serving.registry.ModelRegistry`, keeps one
immutable :class:`~repro.serving.engine.ServedModel` per name, and routes
every prediction through the shared micro-batching
:class:`~repro.serving.engine.PredictionEngine`.

Hot swap: ``load``/``swap`` build the replacement ``ServedModel`` fully
*before* publishing it under the service lock, and every in-flight batch
computes against the reference it captured at enqueue time — so under a
concurrent swap each request is answered entirely by the old or entirely
by the new version, never a mixture. Swapping also invalidates the old
version's cache entries (the version-qualified cache keys already make
them unreachable; invalidation just frees the space).

Because the replacement is built fully before publication, a *failed*
swap — corrupt artifact, checksum mismatch, missing basis — can never
disturb the version already serving: the previous ``ServedModel`` stays
installed, the failure is counted in
:meth:`ServingMetrics.record_swap_failure`, and the caller gets a
:class:`~repro.errors.ServingError` wrapping the cause.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ServingError
from repro.serving.engine import (
    BatchConfig,
    CacheConfig,
    PredictionEngine,
    ServedModel,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ModelRegistry, RegistryError
from repro.serving.requests import PredictionRequest, PredictionResult

__all__ = ["ModelService"]


class ModelService:
    """Serve registry models through one micro-batching engine.

    Parameters
    ----------
    registry:
        The model store to resolve keys against.
    batch, cache:
        Engine configuration (see :class:`BatchConfig`,
        :class:`CacheConfig`); defaults serve well-batched traffic.
    metrics:
        Optional shared :class:`ServingMetrics`; one is created if absent.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        batch: Optional[BatchConfig] = None,
        cache: Optional[CacheConfig] = None,
        metrics: Optional[ServingMetrics] = None,
    ) -> None:
        self.registry = registry
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.engine = PredictionEngine(
            metrics=self.metrics, batch=batch, cache=cache
        )
        self._lock = threading.RLock()
        self._served: Dict[str, ServedModel] = {}

    # -- model lifecycle ------------------------------------------------
    def load(
        self,
        key: str,
        alias: Optional[str] = None,
        fault_plan=None,
    ) -> ServedModel:
        """Resolve, verify and install a registry entry for serving.

        ``alias`` overrides the serving name (default: the registry
        name), so two versions of one artifact can be served side by
        side. Returns the installed :class:`ServedModel`. Loading onto a
        name that is already serving performs a hot swap; a swap that
        fails to build its replacement (corrupt artifact, missing basis,
        an injected ``fault_plan`` firing its ``"swap"`` site) leaves
        the previous version serving, counts a
        :meth:`~repro.serving.metrics.ServingMetrics.record_swap_failure`
        and raises :class:`~repro.errors.ServingError`. A *first* load's
        failure has nothing to fall back to and re-raises unchanged.

        ``fault_plan`` is a chaos-testing hook: a
        :class:`~repro.faults.FaultPlan` fired at site ``"swap"`` after
        the artifact resolves but before publication.
        """
        try:
            entry, models, basis = self.registry.load_models(key)
            if basis is None:
                raise RegistryError(
                    f"entry {entry.key} carries no basis spec; it cannot "
                    "serve raw-x requests"
                )
            if fault_plan is not None:
                from repro.faults import raise_serving_fault

                raise_serving_fault(fault_plan)
            served = ServedModel(
                name=alias or entry.name,
                version=entry.version,
                basis=basis,
                models=models,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:
            name = alias or str(key).partition("@")[0]
            with self._lock:
                previous = self._served.get(name)
            if previous is None:
                raise
            self.metrics.record_swap_failure()
            raise ServingError(
                f"hot swap of {name!r} to {key!r} failed; version "
                f"{previous.version} is still serving: "
                f"{type(error).__name__}: {error}"
            ) from error
        with self._lock:
            swapping = served.name in self._served
            self._served[served.name] = served
        if swapping:
            self.engine.invalidate(served.name)
            self.metrics.record_hot_swap()
        return served

    def swap(
        self,
        key: str,
        alias: Optional[str] = None,
        fault_plan=None,
    ) -> ServedModel:
        """Hot-swap a serving name to another registry version.

        Alias for :meth:`load`; kept separate so call sites read as the
        operation they perform.
        """
        return self.load(key, alias=alias, fault_plan=fault_plan)

    def unload(self, name: str) -> None:
        """Stop serving ``name`` and drop its cached predictions."""
        with self._lock:
            if name not in self._served:
                raise KeyError(f"{name!r} is not being served")
            del self._served[name]
        self.engine.invalidate(name)

    def served_model(self, name: str) -> ServedModel:
        """The currently-installed model version behind ``name``."""
        with self._lock:
            if name not in self._served:
                raise KeyError(
                    f"{name!r} is not being served; loaded: "
                    f"{sorted(self._served)}"
                )
            return self._served[name]

    @property
    def serving(self) -> List[str]:
        """Names currently being served, sorted."""
        with self._lock:
            return sorted(self._served)

    # -- prediction -----------------------------------------------------
    def predict(
        self, name: str, x: np.ndarray, state: int
    ) -> PredictionResult:
        """Answer one request against the current version of ``name``."""
        return self.engine.predict(self.served_model(name), x, state)

    def predict_many(
        self, name: str, x: np.ndarray, states: Sequence[int]
    ) -> List[PredictionResult]:
        """Answer a bulk request list (one matmul per state group)."""
        return self.engine.predict_many(self.served_model(name), x, states)

    def submit(self, request: PredictionRequest) -> PredictionResult:
        """Answer one :class:`PredictionRequest` (streaming path)."""
        return self.predict(request.model, request.x, request.state)

    def flush(self) -> int:
        """Force a micro-batch flush; returns answered request count."""
        return self.engine.flush()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelService(serving={self.serving}, "
            f"registry={self.registry!r})"
        )
