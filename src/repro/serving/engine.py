"""Micro-batching prediction engine with an LRU request cache.

The hot path of serving is a matmul — ``basis.expand(x) @ coef[state]``
— and a matmul over one stacked design matrix is far cheaper than the
same rows one by one. The engine therefore never computes a request in
isolation if it can help it:

* ``predict`` (the streaming path) parks each request in a queue; the
  queue flushes when it reaches ``BatchConfig.max_batch_size`` rows or
  when ``flush_interval`` elapses, whichever comes first, and one
  vectorized :meth:`ServedModel.predict_design` call answers every
  queued request of the same (model, state) group. Concurrent callers
  coalesce; a lone caller pays at most one flush interval of latency.
* ``predict_many`` (the bulk path) groups the whole request list by
  state, deduplicates quantized-identical rows, and runs exactly one
  ``FrozenModel.predict`` per (model, state) group — so its outputs are
  bit-identical to calling ``FrozenModel.predict`` directly on the same
  deduplicated stacked matrix.

Results are cached in an LRU keyed on ``(name, version, state,
quantized x)``; the version in the key makes hot-swap safe — a swapped
model can never serve a predecessor's cached numbers.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from types import MappingProxyType
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.basis import BasisDictionary
from repro.core.frozen import FrozenModel
from repro.serving.metrics import ServingMetrics
from repro.serving.requests import PredictionResult, quantize_key
from repro.utils.validation import check_matrix

__all__ = ["BatchConfig", "CacheConfig", "PredictionEngine", "ServedModel"]


@dataclass(frozen=True)
class BatchConfig:
    """Micro-batching knobs.

    ``max_batch_size`` rows force a flush; otherwise the oldest queued
    request waits at most ``flush_interval`` seconds. The two sentinel
    intervals are distinct: ``flush_interval=0`` means *flush
    immediately* (the "unbatched" baseline, like ``max_batch_size=1``),
    while ``flush_interval=None`` means *never flush on time* — a
    request waits, indefinitely if need be, until the batch fills or
    someone flushes explicitly.
    """

    max_batch_size: int = 64
    flush_interval: Optional[float] = 0.002

    def __post_init__(self) -> None:
        """Validate the configuration."""
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.flush_interval is not None and self.flush_interval < 0:
            raise ValueError(
                f"flush_interval must be >= 0 or None, "
                f"got {self.flush_interval}"
            )

    def wait_timeout(self) -> Optional[float]:
        """Event-wait timeout for the streaming path.

        ``None`` (size-triggered flushing only) waits without a timeout;
        ``0`` polls on a short interval so an immediate-flush engine can
        never park a request forever — the regression the old
        ``flush_interval or None`` coercion caused by conflating the
        falsy ``0`` with ``None``.
        """
        if self.flush_interval is None:
            return None
        if self.flush_interval == 0.0:
            return 5e-4
        return self.flush_interval


@dataclass(frozen=True)
class CacheConfig:
    """Prediction-cache knobs.

    ``capacity`` bounds the LRU entry count (0 disables caching);
    ``decimals`` sets the input quantization — requests agreeing to that
    many digits share one cached prediction.
    """

    capacity: int = 4096
    decimals: int = 9

    def __post_init__(self) -> None:
        """Validate the configuration."""
        if self.capacity < 0:
            raise ValueError(
                f"capacity must be >= 0, got {self.capacity}"
            )

    @property
    def enabled(self) -> bool:
        """Whether caching is active (capacity > 0)."""
        return self.capacity > 0


class ServedModel:
    """An immutable, fully-resolved model version ready to serve.

    Bundles the basis with one :class:`FrozenModel` per metric under a
    ``(name, version)`` identity. The service swaps whole ``ServedModel``
    objects atomically, and every batch captures one reference before
    computing — so a single answer can never mix two versions'
    coefficients.
    """

    def __init__(
        self,
        name: str,
        version: int,
        basis: BasisDictionary,
        models: Mapping[str, FrozenModel],
    ) -> None:
        if not models:
            raise ValueError("at least one metric model is required")
        states = {frozen.coef_.shape[0] for frozen in models.values()}
        if len(states) != 1:
            raise ValueError(
                f"metric models disagree on the state count: {sorted(states)}"
            )
        for metric, frozen in models.items():
            if frozen.coef_.shape[1] != basis.n_basis:
                raise ValueError(
                    f"model {metric!r} has {frozen.coef_.shape[1]} "
                    f"coefficients but the basis has {basis.n_basis} "
                    "functions"
                )
        self.name = str(name)
        self.version = int(version)
        self.basis = basis
        self._models = dict(models)
        self.n_states = states.pop()

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Served metrics, sorted."""
        return tuple(sorted(self._models))

    @property
    def models(self) -> Mapping[str, FrozenModel]:
        """Read-only metric → frozen-model mapping (do not mutate)."""
        return MappingProxyType(self._models)

    def predict_design(
        self, design: np.ndarray, state: int
    ) -> Dict[str, np.ndarray]:
        """One ``FrozenModel.predict`` per metric on a stacked design.

        This is the single compute path of the whole serving layer:
        batched answers are literally elements of these arrays, which is
        what makes them bit-identical to direct ``FrozenModel.predict``
        calls on the same matrix.
        """
        return {
            metric: frozen.predict(design, state)
            for metric, frozen in self._models.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServedModel({self.name}@v{self.version}, "
            f"metrics={list(self.metric_names)}, K={self.n_states})"
        )


@dataclass
class _Pending:
    """One queued streaming request awaiting a batch flush."""

    served: ServedModel
    x: np.ndarray
    state: int
    key: Tuple
    event: threading.Event = field(default_factory=threading.Event)
    result: Optional[PredictionResult] = None
    error: Optional[Exception] = None
    followers: List["_Pending"] = field(default_factory=list)


class PredictionEngine:
    """Coalesces prediction requests into vectorized batched matmuls."""

    def __init__(
        self,
        metrics: Optional[ServingMetrics] = None,
        batch: Optional[BatchConfig] = None,
        cache: Optional[CacheConfig] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.batch = batch if batch is not None else BatchConfig()
        self.cache = cache if cache is not None else CacheConfig()
        self._lock = threading.Lock()
        self._queue: List[_Pending] = []
        self._inflight: Dict[Tuple, _Pending] = {}
        self._cache: "OrderedDict[Tuple, Dict[str, float]]" = OrderedDict()

    # -- cache ----------------------------------------------------------
    def _cache_key(self, served: ServedModel, x: np.ndarray, state: int):
        quant = quantize_key(x, state, self.cache.decimals)
        return (served.name, served.version) + quant

    def _cache_get(self, key) -> Optional[Dict[str, float]]:
        """Look up (and LRU-touch) a key. Caller holds the lock."""
        if not self.cache.enabled:
            return None
        values = self._cache.get(key)
        if values is not None:
            self._cache.move_to_end(key)
        return values

    def _cache_put(self, key, values: Dict[str, float]) -> None:
        """Insert a computed result. Caller holds the lock."""
        if not self.cache.enabled:
            return
        self._cache[key] = values
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache.capacity:
            self._cache.popitem(last=False)

    def cache_clear(self) -> None:
        """Drop every cached prediction."""
        with self._lock:
            self._cache.clear()

    def invalidate(self, name: str) -> None:
        """Drop cached predictions of every version of ``name``."""
        with self._lock:
            stale = [key for key in self._cache if key[0] == name]
            for key in stale:
                del self._cache[key]

    @property
    def cache_size(self) -> int:
        """Number of cached predictions currently held."""
        with self._lock:
            return len(self._cache)

    # -- validation -----------------------------------------------------
    @staticmethod
    def _check_request(
        served: ServedModel, x: np.ndarray, state: int
    ) -> np.ndarray:
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape[0] != served.basis.n_variables:
            raise ValueError(
                f"request has {x.shape[0]} variables, model "
                f"{served.name}@v{served.version} expects "
                f"{served.basis.n_variables}"
            )
        if not 0 <= int(state) < served.n_states:
            raise IndexError(
                f"state {state} out of range 0..{served.n_states - 1}"
            )
        return x

    # -- streaming path -------------------------------------------------
    def predict(
        self, served: ServedModel, x: np.ndarray, state: int
    ) -> PredictionResult:
        """Answer one request, coalescing with concurrent ones.

        Blocks until the request's batch flushes — at most one
        ``flush_interval`` after enqueueing (a full queue, another
        thread's flush or this thread's own timeout flush, whichever
        happens first).
        """
        started = time.perf_counter()
        x = self._check_request(served, x, int(state))
        key = self._cache_key(served, x, int(state))
        with self._lock:
            values = self._cache_get(key)
            if values is not None:
                result = PredictionResult(
                    values=dict(values), cached=True, version=served.version
                )
                self.metrics.record_request(
                    time.perf_counter() - started, cache_hit=True
                )
                return result
            leader = self._inflight.get(key)
            item = _Pending(served=served, x=x, state=int(state), key=key)
            if leader is not None:
                leader.followers.append(item)
            else:
                self._inflight[key] = item
                self._queue.append(item)
            flush_now = (
                len(self._queue) >= self.batch.max_batch_size
                or self.batch.flush_interval == 0.0
            )
        if flush_now:
            self.flush()
        timeout = self.batch.wait_timeout()
        while not item.event.wait(timeout=timeout):
            self.flush()
        if item.error is not None:
            raise item.error
        self.metrics.record_request(
            time.perf_counter() - started, cache_hit=item.result.cached
        )
        return item.result

    def flush(self) -> int:
        """Drain the queue now; returns how many requests were answered."""
        with self._lock:
            pending = self._queue
            self._queue = []
        if not pending:
            return 0
        groups: Dict[Tuple[int, int], List[_Pending]] = {}
        for item in pending:
            groups.setdefault((id(item.served), item.state), []).append(item)
        answered = 0
        for items in groups.values():
            served, state = items[0].served, items[0].state
            try:
                design = served.basis.expand(
                    np.stack([item.x for item in items])
                )
                outputs = served.predict_design(design, state)
            except Exception as error:  # propagate to every waiter
                with self._lock:
                    for item in items:
                        self._inflight.pop(item.key, None)
                for item in items:
                    item.error = error
                    for follower in item.followers:
                        follower.error = error
                        follower.event.set()
                    item.event.set()
                continue
            self.metrics.record_batch(len(items))
            with self._lock:
                for j, item in enumerate(items):
                    values = {
                        metric: float(column[j])
                        for metric, column in outputs.items()
                    }
                    self._cache_put(item.key, values)
                    self._inflight.pop(item.key, None)
                    item.result = PredictionResult(
                        values=values, cached=False,
                        version=served.version,
                    )
            for item in items:
                for follower in item.followers:
                    follower.result = PredictionResult(
                        values=dict(item.result.values),
                        cached=True,
                        version=served.version,
                    )
                    follower.event.set()
                    answered += 1
                item.event.set()
                answered += 1
        return answered

    # -- bulk path ------------------------------------------------------
    def predict_many(
        self,
        served: ServedModel,
        x: np.ndarray,
        states: Sequence[int],
    ) -> List[PredictionResult]:
        """Answer a request list with one matmul per (model, state) group.

        Rows are deduplicated on their quantized cache key, so repeated
        points cost one computation; within a group, first occurrences
        are computed in request order — the answers are bit-identical to
        ``FrozenModel.predict`` on the same deduplicated stacked matrix.
        """
        started = time.perf_counter()
        x = check_matrix(x, "x", shape=(None, served.basis.n_variables))
        states = np.asarray(states, dtype=int)
        if states.shape != (x.shape[0],):
            raise ValueError(
                f"got {x.shape[0]} rows but {states.shape} states"
            )
        n = x.shape[0]
        if n == 0:
            return []
        for state in np.unique(states):
            if not 0 <= state < served.n_states:
                raise IndexError(
                    f"state {state} out of range 0..{served.n_states - 1}"
                )
        results: List[Optional[PredictionResult]] = [None] * n
        # Scan: answer cache hits, dedupe misses per state in first-seen
        # order. positions[state] maps each unique key to request indices.
        # Quantization is vectorized over the whole matrix up front; the
        # per-request work is a bytes slice and dict lookups.
        rounded = np.ascontiguousarray(
            np.round(x, self.cache.decimals) + 0.0
        )
        prefix = (served.name, served.version)
        state_list = [int(state) for state in states]
        rows: Dict[int, List[int]] = {}
        order: Dict[int, Dict[Tuple, int]] = {}
        positions: Dict[int, List[List[int]]] = {}
        hits = 0
        version = served.version
        with self._lock:
            cache = self._cache
            cache_enabled = self.cache.enabled
            for i in range(n):
                state = state_list[i]
                key = prefix + (state, rounded[i].tobytes())
                if cache_enabled:
                    values = cache.get(key)
                    if values is not None:
                        cache.move_to_end(key)
                        results[i] = PredictionResult(
                            values=dict(values), cached=True,
                            version=version,
                        )
                        hits += 1
                        continue
                seen = order.setdefault(state, {})
                slot = seen.get(key)
                if slot is None:
                    seen[key] = len(seen)
                    rows.setdefault(state, []).append(i)
                    positions.setdefault(state, []).append([i])
                else:
                    positions[state][slot].append(i)
                    hits += 1
        for state, row_indices in rows.items():
            design = served.basis.expand(x[np.asarray(row_indices)])
            outputs = served.predict_design(design, state)
            self.metrics.record_batch(len(row_indices))
            keys = list(order[state])
            with self._lock:
                for j, key in enumerate(keys):
                    values = {
                        metric: float(column[j])
                        for metric, column in outputs.items()
                    }
                    self._cache_put(key, values)
                    first, *rest = positions[state][j]
                    results[first] = PredictionResult(
                        values=values, cached=False, version=served.version
                    )
                    for i in rest:
                        results[i] = PredictionResult(
                            values=dict(values), cached=True,
                            version=served.version,
                        )
        elapsed = time.perf_counter() - started
        per_request = elapsed / n
        if hits:
            self.metrics.record_request(per_request, True, count=hits)
        if n - hits:
            self.metrics.record_request(per_request, False, count=n - hits)
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PredictionEngine(batch={self.batch}, cache={self.cache})"
        )
