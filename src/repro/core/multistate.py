"""Precomputed multi-state data shared across the whole fit path.

Every dual-space solve needs the same derived quantities: the row-stacked
design ``Φ``, the concatenated target ``y``, the row→state map ``s``, the
per-state row offsets and the expanded index grid that turns the K×K
correlation matrix ``R`` into the n×n matrix ``R[s, s]``. Historically each
``compute_posterior`` call re-derived all of them — once per EM iteration,
once per greedy step, once per CV candidate. :class:`MultiStateData` builds
them exactly once per fit and is shared by the EM loop, the S-OMP
initializer and the predictive machinery.

The object is immutable after construction; ``restrict`` produces a
column-restricted companion (for EM pruning) that *shares* the target and
row/state bookkeeping and only re-slices ``Φ``. When the restriction keeps
every column, the original object is returned unchanged — the common
no-pruning EM configuration performs zero re-stacking work per iteration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import validate_multistate

__all__ = ["MultiStateData"]


class MultiStateData:
    """Stacked per-state designs/targets plus cached index structure.

    Attributes
    ----------
    phi:
        Row-stacked design, shape (n, M); rows of state k are contiguous.
    y:
        Concatenated targets, shape (n,).
    state_of_row:
        Row→state map ``s``, shape (n,).
    offsets:
        Cumulative row offsets, shape (K + 1,); state k owns rows
        ``offsets[k]:offsets[k + 1]``.
    row_starts:
        ``offsets[:-1]`` — the segment boundaries for ``np.add.reduceat``.
    state_slices:
        Per-state row slices into ``phi``/``y``.
    """

    __slots__ = (
        "phi",
        "y",
        "state_of_row",
        "offsets",
        "row_starts",
        "state_slices",
        "_row_grid",
        "_all_columns",
        "_balanced",
    )

    def __init__(
        self,
        phi: np.ndarray,
        y: np.ndarray,
        offsets: np.ndarray,
        state_of_row: np.ndarray,
    ) -> None:
        self.phi = phi
        self.y = y
        self.offsets = offsets
        self.state_of_row = state_of_row
        self.row_starts = offsets[:-1]
        self.state_slices: Tuple[slice, ...] = tuple(
            slice(int(offsets[k]), int(offsets[k + 1]))
            for k in range(offsets.shape[0] - 1)
        )
        # Open-mesh index pair expanding R (K×K) to R[s, s] (n×n).
        self._row_grid = (state_of_row[:, None], state_of_row[None, :])
        self._all_columns = None
        self._balanced: Optional[bool] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_states(
        cls,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
        *,
        validate: bool = True,
    ) -> "MultiStateData":
        """Stack per-state data once; ``validate=False`` skips coercion
        when the caller already ran :func:`validate_multistate`."""
        if validate:
            designs, targets = validate_multistate(designs, targets)
        phi = np.vstack(designs) if len(designs) > 1 else designs[0]
        y = np.concatenate(targets) if len(targets) > 1 else targets[0]
        counts = [d.shape[0] for d in designs]
        offsets = np.concatenate(([0], np.cumsum(counts)))
        state_of_row = np.repeat(np.arange(len(designs)), counts)
        return cls(phi, y, offsets, state_of_row)

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states K."""
        return self.offsets.shape[0] - 1

    @property
    def n_basis(self) -> int:
        """Number of basis columns M."""
        return self.phi.shape[1]

    @property
    def n_rows(self) -> int:
        """Total sample count n across all states."""
        return self.phi.shape[0]

    @property
    def designs(self) -> List[np.ndarray]:
        """Per-state design views into the stacked ``phi`` (no copies)."""
        return [self.phi[sl] for sl in self.state_slices]

    @property
    def targets(self) -> List[np.ndarray]:
        """Per-state target views into the concatenated ``y``."""
        return [self.y[sl] for sl in self.state_slices]

    # ------------------------------------------------------------------
    @property
    def state_balanced(self) -> bool:
        """True when every state carries the *same* design matrix.

        This is the structural precondition of the Kronecker posterior
        solver: with one shared ``B`` (N × M) per state, ``DᵀD = BᵀB ⊗ I``
        and the MK-dimensional posterior decouples along the eigenvectors
        of R. Datasets generated with ``MonteCarloEngine.run(...,
        shared_samples=True)`` (one Monte-Carlo draw evaluated at every
        state) have this property by construction. The check is lazy and
        cached: equal row counts first, then an exact block comparison.
        """
        if self._balanced is None:
            self._balanced = self._check_balanced()
        return self._balanced

    def _check_balanced(self) -> bool:
        counts = np.diff(self.offsets)
        if counts.size == 0 or not np.all(counts == counts[0]):
            return False
        first = self.phi[self.state_slices[0]]
        for sl in self.state_slices[1:]:
            if not np.array_equal(first, self.phi[sl]):
                return False
        return True

    @property
    def shared_design(self) -> np.ndarray:
        """The per-state design ``B`` (N × M) of state-balanced data."""
        if not self.state_balanced:
            raise ValueError(
                "shared_design requires state-balanced data (every state "
                "fitted on the same design matrix)"
            )
        return self.phi[self.state_slices[0]]

    def targets_matrix(self) -> np.ndarray:
        """Targets as an (N, K) matrix (column k = state k); balanced only.

        Rows are state-major in ``y``, so for balanced data this is a
        zero-copy reshape.
        """
        if not self.state_balanced:
            raise ValueError(
                "targets_matrix requires state-balanced data"
            )
        n_per = self.n_rows // self.n_states
        return self.y.reshape(self.n_states, n_per).T

    # ------------------------------------------------------------------
    def restrict(self, columns: np.ndarray) -> "MultiStateData":
        """Column-restricted companion sharing all row/state structure.

        Returns ``self`` when ``columns`` is the identity selection — the
        no-pruning EM loop then performs no per-iteration copies at all.
        """
        columns = np.asarray(columns)
        if columns.size == self.n_basis and np.array_equal(
            columns, np.arange(self.n_basis)
        ):
            return self
        restricted = MultiStateData.__new__(MultiStateData)
        restricted.phi = self.phi[:, columns]
        restricted.y = self.y
        restricted.offsets = self.offsets
        restricted.state_of_row = self.state_of_row
        restricted.row_starts = self.row_starts
        restricted.state_slices = self.state_slices
        restricted._row_grid = self._row_grid
        restricted._all_columns = None
        # A column subset of a shared design is still shared; an already
        # known-unbalanced parent cannot become balanced by dropping
        # columns we'd want to rely on — propagate the cached verdict.
        restricted._balanced = self._balanced
        return restricted

    def expand_correlation(self, correlation: np.ndarray) -> np.ndarray:
        """``R[s, s]`` — the n×n expansion through the cached index grid."""
        return correlation[self._row_grid]

    def segment_sum(self, values: np.ndarray) -> np.ndarray:
        """Sum ``values`` (first axis = rows) within each state's segment.

        Returns shape ``(K,) + values.shape[1:]``. States are guaranteed
        non-empty by :func:`validate_multistate`, which makes
        ``np.add.reduceat`` semantics exact.
        """
        return np.add.reduceat(values, self.row_starts, axis=0)

    def predict_rows(self, mean: np.ndarray) -> np.ndarray:
        """Row-wise prediction ``Φ[i] · mean[:, s_i]`` for an (M, K) mean."""
        prediction = np.empty(self.n_rows)
        for k, sl in enumerate(self.state_slices):
            prediction[sl] = self.phi[sl] @ mean[:, k]
        return prediction
