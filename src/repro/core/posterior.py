"""MAP posterior of the C-BMF model (paper Section 3.2).

The posterior of the stacked coefficient vector α (eq. 19) is Gaussian with

    Σ_p = A − A Dᵀ (σ0² I + D A Dᵀ)⁻¹ D A                  (eq. 20, via
                                                            push-through)
    μ_p = σ0⁻² Σ_p Dᵀ y = A Dᵀ C⁻¹ y,   C = σ0² I + D A Dᵀ

``D`` is the ``NK × MK`` permuted block-diagonal design (eq. 18) and ``A``
the block prior (eq. 11). Forming either is hopeless at the paper's scale
(M·K ≈ 40 000), but both products collapse:

* ``D A Dᵀ = (Φ Λ Φᵀ) ∘ R[s, s]`` — an ``n × n`` Hadamard product, where
  ``Φ`` stacks the per-state designs row-wise, ``Λ = diag(λ)``, and ``s``
  maps each row to its state;
* the per-basis posterior mean is ``μ_p^m = λ_m · R · (D_mᵀ C⁻¹ y)`` and the
  per-basis covariance block ``Σ_p^m = λ_m R − λ_m² R S_m R`` with
  ``S_m[a,b] = Σ_{i∈a, j∈b} Φ[i,m]·C⁻¹[i,j]·Φ[j,m]``.

Those blocks are exactly what the EM updates (eq. 29-31) consume, so the
whole algorithm runs in ``O(n²·M + n³)`` per iteration instead of
``O((MK)³)``. ``compute_posterior_dense`` keeps the literal textbook
formulas as a cross-check oracle for tests.

For *state-balanced* data (every state fitted on the same design matrix,
e.g. a swept-frequency dataset) a second fast path exists: the Kronecker
solver of :mod:`repro.core.kronecker`, which decouples the posterior into
K independent M-dimensional solves along the eigenvectors of R and scales
near-linearly in K. :func:`compute_posterior` auto-selects between the
two (``method="auto"``); both are validated against the dense oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import linalg as sla

from repro.core.base import validate_multistate
from repro.core.kronecker import (
    KroneckerFactors,
    compute_posterior_kron,
    kron_applicable,
    resolve_solver_mode,
)
from repro.core.multistate import MultiStateData
from repro.core.prior import CorrelatedPrior
from repro.errors import NumericalError
from repro.utils.linalg import cholesky_factor, inv_from_cholesky, inv_psd

__all__ = ["PosteriorResult", "compute_posterior", "compute_posterior_dense"]


@dataclass
class PosteriorResult:
    """Posterior summary consumed by MAP prediction and the EM updates.

    Attributes
    ----------
    mean:
        Posterior mean, shape (M, K): ``mean[m, k]`` is the MAP coefficient
        of basis m in state k (the paper's α_{k,m}, eq. 22).
    sigma_blocks:
        Per-basis K×K posterior covariance blocks Σ_p^m, shape (M, K, K);
        ``None`` when not requested — and *also* ``None`` on the
        Kronecker path, which keeps the blocks factored in :attr:`kron`
        instead of materializing O(M·K²) memory. Consumers that need
        block statistics go through :meth:`mstep_lambda_stats` /
        :meth:`mstep_scaled_moment` / :meth:`covariance_blocks`, which
        work for either representation.
    residual_sq:
        ``‖y − D μ_p‖²`` summed over all states.
    trace_dsd:
        ``Tr(D Σ_p Dᵀ)`` — the posterior-uncertainty term of the σ0
        update. ``None`` when the solve skipped the inverse branch
        (``want_blocks=False``); consumers must go through
        :meth:`require_trace_dsd` so a skipped computation fails loudly
        instead of leaking into noise estimates.
    nll:
        Negative log marginal likelihood (eq. 25, up to the constant
        ``n·log 2π``).
    noise_var:
        The σ0² used for this solve.
    kron:
        :class:`repro.core.kronecker.KroneckerFactors` when this result
        came from the Kronecker solver (factored covariance), else None.
    """

    mean: np.ndarray
    sigma_blocks: Optional[np.ndarray]
    residual_sq: float
    trace_dsd: Optional[float]
    nll: float
    noise_var: float
    kron: Optional[KroneckerFactors] = None

    @property
    def coef(self) -> np.ndarray:
        """Coefficients in estimator layout, shape (K, M)."""
        return self.mean.T

    @property
    def solver(self) -> str:
        """Which fast path produced this result: ``"kron"`` or ``"dual"``."""
        return "kron" if self.kron is not None else "dual"

    # ------------------------------------------------------------------
    # representation-agnostic covariance consumers
    # ------------------------------------------------------------------
    def covariance_blocks(self) -> np.ndarray:
        """Dense (M, K, K) blocks, materializing Kronecker factors on demand.

        O(M·K²) memory on the Kronecker path — for tests and inspection;
        the fit path consumes the factored statistics below instead.
        """
        if self.sigma_blocks is not None:
            return self.sigma_blocks
        if self.kron is not None:
            return self.kron.materialize_blocks()
        raise NumericalError(
            "posterior covariance was not computed (solved with "
            "want_blocks=False); re-solve with want_blocks=True"
        )

    def mstep_lambda_stats(
        self, correlation: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-basis ``(μ^mᵀR⁻¹μ^m, Tr(R⁻¹Σ^m))`` for the λ update (eq. 29).

        ``correlation`` must be the R this posterior was solved at. The
        dense representation evaluates the literal einsums; the Kronecker
        representation reads both off its ω-grid without forming R⁻¹.
        """
        if self.kron is not None:
            return self.kron.mstep_lambda_stats(correlation)
        if self.sigma_blocks is None:
            raise NumericalError(
                "posterior covariance was not computed (solved with "
                "want_blocks=False); re-solve with want_blocks=True"
            )
        r_inv = inv_psd(correlation)
        quad = np.einsum("mk,kl,ml->m", self.mean, r_inv, self.mean)
        traces = np.einsum("kl,mlk->m", r_inv, self.sigma_blocks)
        return quad, traces

    def mstep_scaled_moment(self, scale: np.ndarray) -> np.ndarray:
        """``Σ_m (Σ^m + μ^m·μ^mᵀ)/scale_m`` — the R-update numerator (eq. 30)."""
        if self.kron is not None:
            return self.kron.mstep_scaled_moment(scale)
        if self.sigma_blocks is None:
            raise NumericalError(
                "posterior covariance was not computed (solved with "
                "want_blocks=False); re-solve with want_blocks=True"
            )
        second_moment = self.sigma_blocks + np.einsum(
            "mk,ml->mkl", self.mean, self.mean
        )
        contributions = second_moment / np.asarray(scale, dtype=float)[
            :, None, None
        ]
        return contributions.sum(axis=0)

    def require_trace_dsd(self) -> float:
        """``Tr(D Σ_p Dᵀ)``, or :class:`NumericalError` if unavailable.

        Guards the σ0 update: a solve that skipped the inverse branch
        (``want_blocks=False``) has no uncertainty trace, and a
        non-finite one means the inverse itself broke down — both must
        fail here rather than flow silently into noise estimates.
        """
        if self.trace_dsd is None:
            raise NumericalError(
                "trace_dsd was not computed (posterior solved with "
                "want_blocks=False); re-solve with want_blocks=True"
            )
        if not np.isfinite(self.trace_dsd):
            raise NumericalError(
                f"trace_dsd is non-finite ({self.trace_dsd}); the "
                "posterior covariance computation broke down"
            )
        return float(self.trace_dsd)


def _stack(designs: Sequence[np.ndarray], targets: Sequence[np.ndarray]):
    """Stack per-state data row-wise; return (Φ, y, state-of-row)."""
    phi = np.vstack(designs)
    y = np.concatenate(targets)
    state_of_row = np.concatenate(
        [np.full(d.shape[0], k, dtype=int) for k, d in enumerate(designs)]
    )
    return phi, y, state_of_row


def compute_posterior(
    designs: Union[MultiStateData, Sequence[np.ndarray]],
    targets: Optional[Sequence[np.ndarray]] = None,
    prior: CorrelatedPrior = None,
    noise_var: float = None,
    *,
    want_blocks: bool = True,
    method: str = "auto",
) -> PosteriorResult:
    """Posterior mean/blocks/marginal-likelihood through a fast path.

    Parameters
    ----------
    designs, targets:
        Per-state design matrices ``B_k`` (N_k × M) and targets ``y_k`` —
        or a prebuilt :class:`MultiStateData` as the first argument (then
        ``targets`` must be omitted), which skips re-stacking and index
        construction entirely. Hot loops (EM, CV) use the cached form.
    prior:
        The correlated prior ``{λ, R}``; ``prior.n_basis`` must match the
        design width and ``prior.n_states`` the state count.
    noise_var:
        Observation noise variance σ0² (> 0).
    want_blocks:
        Skip the covariance pass when only the MAP mean and the marginal
        likelihood are needed (e.g. pure prediction) — it dominates
        runtime for large M on the dual path.
    method:
        ``"auto"`` (default) — dual-space solve, except state-balanced
        data with ≥ :data:`repro.core.kronecker.KRON_MIN_STATES` states
        and a favourable flop estimate takes the Kronecker path (the
        ``REPRO_POSTERIOR_SOLVER`` environment variable overrides the
        policy); ``"dual"``/``"kron"`` force one path explicitly —
        ``"kron"`` raises :class:`ValueError` on unbalanced data.
    """
    if isinstance(designs, MultiStateData):
        if targets is not None:
            raise TypeError(
                "targets must be None when passing MultiStateData"
            )
        data = designs
    else:
        data = MultiStateData.from_states(designs, targets)
    if noise_var is None or noise_var <= 0.0:
        raise ValueError(f"noise_var must be > 0, got {noise_var}")
    n_states = data.n_states
    n_basis = data.n_basis
    if prior.n_basis != n_basis:
        raise ValueError(
            f"prior has {prior.n_basis} bases, designs have {n_basis}"
        )
    if prior.n_states != n_states:
        raise ValueError(
            f"prior has {prior.n_states} states, got {n_states} designs"
        )

    if method not in ("auto", "dual", "kron"):
        raise ValueError(
            f"method must be 'auto', 'dual' or 'kron', got {method!r}"
        )
    if method == "kron":
        return compute_posterior_kron(
            data, prior, noise_var, want_blocks=want_blocks
        )
    if method == "auto":
        mode = resolve_solver_mode()
        if (mode == "kron" and data.state_balanced) or (
            mode == "auto" and kron_applicable(data)
        ):
            return compute_posterior_kron(
                data, prior, noise_var, want_blocks=want_blocks
            )

    lambdas = prior.lambdas
    correlation = prior.correlation
    phi, y = data.phi, data.y
    n_rows = data.n_rows

    # C = σ0²·I + (Φ Λ Φᵀ) ∘ R[s, s]
    gram = (phi * lambdas) @ phi.T
    dad = gram * data.expand_correlation(correlation)
    c_matrix = dad.copy()
    c_matrix.flat[:: n_rows + 1] += noise_var
    factor = cholesky_factor(c_matrix)

    v = sla.cho_solve((factor, True), y, check_finite=False)

    # W[m, k] = Σ_{rows i of state k} Φ[i, m]·v[i]  →  μ^m = λ_m·R·W[m, :]
    w_matrix = data.segment_sum(phi * v[:, None]).T
    mean = lambdas[:, None] * (w_matrix @ correlation)

    # Residual and marginal likelihood.
    residual = y - data.predict_rows(mean)
    residual_sq = float(residual @ residual)
    log_det = 2.0 * float(np.sum(np.log(np.diag(factor))))
    nll = float(y @ v) + log_det

    sigma_blocks = None
    trace_dsd: Optional[float] = None
    if want_blocks:
        c_inv = inv_from_cholesky(factor)
        # DADᵀ = C − σ0²·I collapses the uncertainty trace to
        # Tr(D Σ_p Dᵀ) = σ0²·(n − σ0²·Tr(C⁻¹)) — no extra solve needed.
        trace_dsd = noise_var * (
            n_rows - noise_var * float(np.trace(c_inv))
        )
        # S[m, a, b] = Φ_aᵀ[:, m] · C⁻¹[a-block, b-block] · Φ_b[:, m]:
        # one (n × n_b)(n_b × M) product per state b, then a segment-sum
        # over the a-axis — O(n²M) total with a K-length Python loop.
        # The (n, M) scratch buffer is reused across states.
        s_tensor = np.empty((n_basis, n_states, n_states))
        cross = np.empty_like(phi)
        for b, rows_b in enumerate(data.state_slices):
            np.matmul(c_inv[:, rows_b], phi[rows_b], out=cross)
            np.multiply(phi, cross, out=cross)
            s_tensor[:, :, b] = data.segment_sum(cross).T
        s_tensor = 0.5 * (s_tensor + np.swapaxes(s_tensor, 1, 2))
        # Σ^m = λ_m·R − λ_m²·R·S_m·R
        rsr = correlation @ s_tensor @ correlation
        sigma_blocks = (
            lambdas[:, None, None] * correlation[None, :, :]
            - (lambdas**2)[:, None, None] * rsr
        )

    return PosteriorResult(
        mean=mean,
        sigma_blocks=sigma_blocks,
        residual_sq=residual_sq,
        trace_dsd=trace_dsd,
        nll=nll,
        noise_var=noise_var,
    )


def compute_posterior_dense(
    designs: Sequence[np.ndarray],
    targets: Sequence[np.ndarray],
    prior: CorrelatedPrior,
    noise_var: float,
) -> PosteriorResult:
    """Literal-textbook posterior (eq. 18-22) — the O((MK)³) test oracle.

    Materializes the permuted block-diagonal ``D``, the full MK × MK
    prior covariance ``A`` and the complete posterior covariance; only
    usable for small M·K. This function is the ground truth that *both*
    production fast paths are validated against on random shapes
    (including pruned-column designs): the dual-space/Woodbury solve of
    :func:`compute_posterior` and the Kronecker solve of
    :func:`repro.core.kronecker.compute_posterior_kron` — see
    ``tests/core/test_posterior_parity.py`` and
    ``tests/core/test_kronecker.py``. Keep it deliberately naive: any
    optimization here would erode its oracle status.
    """
    designs, targets = validate_multistate(designs, targets)
    n_states = len(designs)
    n_basis = designs[0].shape[1]
    phi, y, state_of_row = _stack(designs, targets)
    n_rows = phi.shape[0]

    # Column (m·K + k) of D carries basis m for rows of state k (eq. 18
    # after the permutation described below it).
    d_matrix = np.zeros((n_rows, n_basis * n_states))
    for i in range(n_rows):
        k = state_of_row[i]
        for m in range(n_basis):
            d_matrix[i, m * n_states + k] = phi[i, m]

    a_matrix = prior.full_covariance()
    c_matrix = noise_var * np.eye(n_rows) + d_matrix @ a_matrix @ d_matrix.T
    c_inv = np.linalg.inv(c_matrix)
    ad_t = a_matrix @ d_matrix.T
    sigma = a_matrix - ad_t @ c_inv @ ad_t.T
    mu = (sigma @ d_matrix.T @ y) / noise_var

    mean = mu.reshape(n_basis, n_states)
    blocks = np.empty((n_basis, n_states, n_states))
    for m in range(n_basis):
        block = slice(m * n_states, (m + 1) * n_states)
        blocks[m] = sigma[block, block]

    residual = y - d_matrix @ mu
    trace_dsd = float(np.trace(d_matrix @ sigma @ d_matrix.T))
    sign, log_det = np.linalg.slogdet(c_matrix)
    if sign <= 0:
        raise np.linalg.LinAlgError("C matrix is not positive definite")
    nll = float(y @ c_inv @ y) + float(log_det)

    return PosteriorResult(
        mean=mean,
        sigma_blocks=blocks,
        residual_sq=float(residual @ residual),
        trace_dsd=trace_dsd,
        nll=nll,
        noise_var=noise_var,
    )
