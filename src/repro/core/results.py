"""Fit diagnostics returned by the C-BMF estimator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.em import EmTrace
from repro.core.somp_init import InitResult

__all__ = ["FitReport"]


@dataclass
class FitReport:
    """Everything a user needs to audit one C-BMF fit.

    Attributes
    ----------
    init:
        The S-OMP/cross-validation seed (Algorithm 1 steps 1-17).
    em:
        EM iteration trace (steps 18-20).
    n_active:
        Basis functions with non-negligible λ after EM.
    noise_std:
        Learned observation noise σ0, in original target units.
    init_seconds / em_seconds / total_seconds:
        Wall-clock cost of the fitting stages (the paper's "fitting cost").
    """

    init: InitResult
    em: EmTrace
    n_active: int
    noise_std: float
    init_seconds: float
    em_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total fitting time."""
        return self.init_seconds + self.em_seconds

    def summary(self) -> str:
        """One-paragraph human-readable fit summary."""
        lines = [
            "C-BMF fit report:",
            (
                f"  init: r0={self.init.r0:g}, sigma0={self.init.sigma0:g}, "
                f"theta={self.init.n_basis} "
                f"({self.init_seconds:.2f}s)"
            ),
            (
                f"  EM: {self.em.n_iterations} iterations, "
                f"converged={self.em.converged}, "
                f"active bases={self.n_active} ({self.em_seconds:.2f}s)"
            ),
            f"  noise std (original units): {self.noise_std:.4g}",
            f"  total fitting time: {self.total_seconds:.2f}s",
        ]
        return "\n".join(lines)
