"""Correlated Bayesian Model Fusion — the paper's core contribution.

``CBMF`` is the user-facing estimator. The submodules factor the method the
same way Section 3 of the paper does:

* ``prior`` — the unified correlated prior (eq. 6-11) and the AR(1)
  parameterization of the cross-state correlation matrix (eq. 32);
* ``posterior`` — MAP estimation in the dual space (eq. 19-22) and the
  marginal likelihood (eq. 25);
* ``somp_init`` — the modified S-OMP + cross-validation hyper-parameter
  initializer (Algorithm 1, steps 1-17);
* ``em`` — the EM hyper-parameter refinement (eq. 29-31, steps 18-20);
* ``clustering`` — the state-clustering extension sketched in the paper's
  conclusion for mutually-different states.
"""

from repro.core.base import MultiStateRegressor
from repro.core.cbmf import CBMF
from repro.core.clustering import ClusteredCBMF, cluster_states
from repro.core.em import EmConfig, EmTrace
from repro.core.frozen import FrozenModel
from repro.core.posterior import PosteriorResult, compute_posterior
from repro.core.predictive import PosteriorPredictor
from repro.core.prior import CorrelatedPrior, ar1_correlation
from repro.core.results import FitReport
from repro.core.somp_init import InitConfig, InitResult, somp_initialize

__all__ = [
    "MultiStateRegressor",
    "CBMF",
    "ClusteredCBMF",
    "cluster_states",
    "EmConfig",
    "EmTrace",
    "FrozenModel",
    "PosteriorResult",
    "PosteriorPredictor",
    "compute_posterior",
    "CorrelatedPrior",
    "ar1_correlation",
    "FitReport",
    "InitConfig",
    "InitResult",
    "somp_initialize",
]
