"""Shared greedy basis selection (the S-OMP scan, paper eq. 33-34).

Both the classic S-OMP baseline and the modified S-OMP initializer of
C-BMF use the same selection rule — pick the basis with the largest summed
residual correlation across states — and differ only in how coefficients
are solved on the growing support. The solver is injected as a callback.

Two solver flavours are accepted:

* a plain callable ``solver(sub_designs, targets) -> (p, K)`` re-solving
  from scratch on the column-restricted designs (the baselines);
* an *incremental* solver object exposing ``begin(designs, targets)`` and
  ``extend(index) -> (p, K)``. Adding basis m changes the dual-space
  kernel by the rank-≤K term ``(φ_m φ_mᵀ) ∘ R[s, s]``, so an incremental
  solver can fold it in with a low-rank Woodbury/Cholesky update in
  O(n²K) instead of refactorizing in O(n³) at every greedy step — see
  :class:`repro.core.somp_init.IncrementalBayesSolver`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import validate_multistate

__all__ = [
    "select_shared_support",
    "CoefficientSolver",
    "IncrementalSolver",
]

#: Solves coefficients on column-restricted designs; returns (p, K) matrix.
CoefficientSolver = Callable[
    [List[np.ndarray], List[np.ndarray]], np.ndarray
]


class IncrementalSolver:
    """Duck-typed interface of incremental greedy solvers (documentation
    only — ``select_shared_support`` detects the methods, not the type)."""

    def begin(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> None:
        """Reset internal state for a fresh scan over ``designs``."""
        raise NotImplementedError

    def extend(self, index: int) -> np.ndarray:
        """Fold basis ``index`` into the support; return (p, K) coefficients."""
        raise NotImplementedError


def select_shared_support(
    designs: Sequence[np.ndarray],
    targets: Sequence[np.ndarray],
    n_select: int,
    solver: Union[CoefficientSolver, IncrementalSolver],
    on_step: Optional[Callable[[List[int], np.ndarray], None]] = None,
    aggregate: str = "l1",
) -> Tuple[List[int], np.ndarray]:
    """Greedy shared-template selection (Algorithm 1, steps 5-11).

    Parameters
    ----------
    designs, targets:
        Per-state design matrices and target vectors.
    n_select:
        Number of basis functions θ to pick.
    solver:
        Callback solving coefficients on the currently-selected columns;
        receives the column-restricted designs (selection order) and the
        original targets, returns a (p, K) coefficient matrix. An object
        with ``begin``/``extend`` methods is used incrementally instead
        (one rank-K update per accepted basis, no refactorization).
    on_step:
        Optional hook called after every iteration with the support so far
        and its coefficients — the initializer uses it to score
        intermediate support sizes without re-running the scan.
    aggregate:
        How per-state residual correlations combine across states:
        ``"l1"`` — ``Σ_k |ξ_{k,m}|`` (the paper's eq. 33);
        ``"l2"`` — ``Σ_k ξ_{k,m}²`` (the S-OMP variant of Tropp et al.).
        Both rank identically when one state dominates; ℓ2 favours bases
        that are very strong in a few states over uniformly-weak ones.

    Returns
    -------
    (support, coefficients):
        Selected basis indices (in selection order) and the final (θ, K)
        coefficient matrix.
    """
    designs, targets = validate_multistate(designs, targets)
    if aggregate not in ("l1", "l2"):
        raise ValueError(
            f"aggregate must be 'l1' or 'l2', got {aggregate!r}"
        )
    n_basis = designs[0].shape[1]
    if not 0 < n_select <= n_basis:
        raise ValueError(
            f"n_select must be in 1..{n_basis}, got {n_select}"
        )

    incremental = hasattr(solver, "begin") and hasattr(solver, "extend")
    if incremental:
        solver.begin(designs, targets)

    support: List[int] = []
    residuals = [target.copy() for target in targets]
    coefficients = np.zeros((0, len(designs)))
    for _ in range(n_select):
        # ξ_{k,m} = b_{k,m}ᵀ Res_k, aggregated over states (eq. 33).
        score = np.zeros(n_basis)
        for design, residual in zip(designs, residuals):
            xi = design.T @ residual
            score += np.abs(xi) if aggregate == "l1" else xi * xi
        score[support] = -np.inf
        chosen = int(np.argmax(score))
        support.append(chosen)

        sub_designs = [design[:, support] for design in designs]
        if incremental:
            coefficients = solver.extend(chosen)
        else:
            coefficients = solver(sub_designs, targets)
        if coefficients.shape != (len(support), len(designs)):
            raise AssertionError(
                f"solver returned shape {coefficients.shape}, expected "
                f"{(len(support), len(designs))}"
            )
        # Res_k = y_k − B_k(Θ)·α_k (eq. 34).
        residuals = [
            target - sub @ coefficients[:, k]
            for k, (sub, target) in enumerate(zip(sub_designs, targets))
        ]
        if on_step is not None:
            on_step(list(support), coefficients)
    return support, coefficients
