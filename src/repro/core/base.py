"""Common interface of all multi-state performance-model estimators.

Every method in this package — least squares, OMP, S-OMP, group lasso,
classic BMF and C-BMF — fits ``K`` linear-in-the-basis models at once:

    y_k ≈ B_k · α_k,    k = 1..K

from per-state design matrices ``B_k`` (``N_k × M``) and target vectors
``y_k``. After ``fit``, ``coef_`` holds the ``K × M`` coefficient matrix.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_matrix, check_vector

__all__ = ["MultiStateRegressor", "validate_multistate"]


def validate_multistate(
    designs: Sequence[np.ndarray], targets: Sequence[np.ndarray]
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Validate and coerce per-state designs/targets.

    Ensures at least one state, a shared basis dimension, and matching
    sample counts between each ``B_k`` and ``y_k``.
    """
    if len(designs) == 0:
        raise ValueError("at least one state is required")
    if len(designs) != len(targets):
        raise ValueError(
            f"got {len(designs)} design matrices but {len(targets)} targets"
        )
    checked_designs: List[np.ndarray] = []
    checked_targets: List[np.ndarray] = []
    n_basis: Optional[int] = None
    for k, (design, target) in enumerate(zip(designs, targets)):
        design = check_matrix(design, f"designs[{k}]")
        if n_basis is None:
            n_basis = design.shape[1]
        elif design.shape[1] != n_basis:
            raise ValueError(
                f"designs[{k}] has {design.shape[1]} basis columns, "
                f"expected {n_basis}"
            )
        target = check_vector(target, f"targets[{k}]", length=design.shape[0])
        checked_designs.append(design)
        checked_targets.append(target)
    return checked_designs, checked_targets


class MultiStateRegressor(abc.ABC):
    """Abstract multi-state linear performance model."""

    #: Set by fit(): coefficient matrix, shape (K, M).
    coef_: np.ndarray

    @abc.abstractmethod
    def fit(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> "MultiStateRegressor":
        """Fit all K state models. Returns self."""

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if getattr(self, "coef_", None) is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted yet; call fit() first"
            )

    @property
    def n_states(self) -> int:
        """Number of fitted states K."""
        self._require_fitted()
        return self.coef_.shape[0]

    @property
    def n_basis(self) -> int:
        """Number of basis functions M."""
        self._require_fitted()
        return self.coef_.shape[1]

    @property
    def support_(self) -> np.ndarray:
        """Indices of basis functions with a nonzero coefficient anywhere."""
        self._require_fitted()
        return np.flatnonzero(np.any(self.coef_ != 0.0, axis=0))

    def predict(self, design: np.ndarray, state: int) -> np.ndarray:
        """Predict one state's performance for a design matrix."""
        self._require_fitted()
        if not 0 <= state < self.coef_.shape[0]:
            raise IndexError(
                f"state {state} out of range 0..{self.coef_.shape[0] - 1}"
            )
        design = check_matrix(
            design, "design", shape=(None, self.coef_.shape[1])
        )
        return design @ self.coef_[state]

    def predict_states(
        self, designs: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Predict every state on its own design matrix."""
        self._require_fitted()
        if len(designs) != self.coef_.shape[0]:
            raise ValueError(
                f"got {len(designs)} designs for {self.coef_.shape[0]} states"
            )
        return [
            self.predict(design, state)
            for state, design in enumerate(designs)
        ]
