"""Kronecker-structured posterior solver for state-balanced designs.

The C-BMF prior covariance is ``A = diag(λ) ⊗ R`` (eq. 11). When every
state shares the same design matrix ``B`` (N × M) — one Monte-Carlo draw
evaluated at every knob/frequency state, the natural shape of a swept
measurement — the data term shares the structure: ``DᵀD = G ⊗ I_K`` with
``G = BᵀB``. The posterior precision

    Σ_p⁻¹ = Λ⁻¹ ⊗ R⁻¹ + σ0⁻² · G ⊗ I_K

then block-diagonalizes under the eigendecomposition ``R = Q·diag(ω)·Qᵀ``:
rotating states by Q leaves K *independent* M-dimensional ridge problems,
state j with prior covariance ``ω_j·Λ``. One more (shared!) symmetric
eigendecomposition finishes each of them in closed form: with
``G̃ = √Λ·G·√Λ = P·diag(γ)·Pᵀ`` and ``denom[i, j] = 1 + ω_j·γ_i/σ0²``,

    Σ̃_j = ω_j · √Λ · P · diag(1/denom[:, j]) · Pᵀ · √Λ
    μ̃_j = (ω_j/σ0²) · √Λ · P · diag(1/denom[:, j]) · Pᵀ · √Λ · Bᵀ·(Y·Q)_j

(the square-root form is exact for λ_m = 0 and singular R). Everything
the EM updates consume — mean, per-basis traces, ``Tr(D Σ_p Dᵀ)``, the
marginal likelihood — reduces to O(M·K) grids over ``denom``:

    Tr(D Σ_p Dᵀ)  = Σ_{i,j} ω_j·γ_i / denom[i, j]
    log det C     = n·log σ0² + Σ_{i,j} log denom[i, j]      (Sylvester)
    yᵀC⁻¹y        = σ0⁻²·‖y − Dμ‖² + μᵀA⁻¹μ,  μᵀA⁻¹μ = Σ T²·ω / σ0⁴

with ``T = P·(Z/denom)``, ``Z = Pᵀ·√Λ·Bᵀ·Y·Q``. Total cost is
O(K³ + M³ + MK·(M + K) + NM²) against the dual path's O(n³ + n²M) with
n = N·K — near-linear in K for fixed per-state sample count, which is
what turns "32 knob settings" into 201-point frequency sweeps.

The (M, K, K) covariance blocks are **never materialized** here (and
neither is the MK × MK prior ``A``): :class:`KroneckerFactors` carries
``(Q, ω, V)`` with ``V[m, j] = Σ̃_j[m, m]`` — enough for every M-step
statistic — and reconstructs dense blocks only on explicit request.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.core.multistate import MultiStateData
from repro.core.prior import CorrelatedPrior
from repro.errors import NumericalError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.posterior import PosteriorResult

__all__ = [
    "KRON_MIN_STATES",
    "KroneckerFactors",
    "compute_posterior_kron",
    "kron_applicable",
    "resolve_solver_mode",
]

#: Minimum state count before the auto-dispatch considers the Kronecker
#: path. Below this the dual solve is already fast, and keeping small-K
#: fits on the historical path preserves bit-identical results for every
#: existing workload (the paper's own examples stop at K = 32 but are
#: *not* state-balanced, so they keep the dual path anyway).
KRON_MIN_STATES = 24

_MODES = ("auto", "dual", "kron")


def resolve_solver_mode() -> str:
    """Posterior solver selection policy: ``REPRO_POSTERIOR_SOLVER``.

    ``auto`` (default) picks the Kronecker path for state-balanced data
    with at least :data:`KRON_MIN_STATES` states when the flop estimate
    favours it; ``dual`` disables the Kronecker path everywhere (the
    benchmark's baseline arm); ``kron`` forces it whenever the data is
    structurally eligible (balanced), regardless of size.
    """
    mode = os.environ.get("REPRO_POSTERIOR_SOLVER", "auto").strip().lower()
    if mode not in _MODES:
        raise ValueError(
            f"REPRO_POSTERIOR_SOLVER must be one of {_MODES}, got {mode!r}"
        )
    return mode


def _kron_flops(n_per: int, n_states: int, n_basis: int) -> float:
    """Rough flop count of one Kronecker posterior solve."""
    m, k = float(n_basis), float(n_states)
    return k**3 + m**3 + n_per * m**2 + m * k * (m + k)


def _dual_flops(n_rows: int, n_basis: int) -> float:
    """Rough flop count of one dual-space posterior solve with blocks."""
    n = float(n_rows)
    return n**3 / 3.0 + n**2 * n_basis


def kron_applicable(
    data: MultiStateData, *, min_states: int = KRON_MIN_STATES
) -> bool:
    """Should the auto-dispatch route this solve through the Kronecker path?

    Requires structural eligibility (state-balanced, ≥ ``min_states``
    states) *and* a favourable cost estimate — a 1264-basis LNA fit at
    K = 32 is balanced-eligible but dominated by the M³ eigendecomposition,
    so it stays on the dual path.
    """
    if data.n_states < min_states or not data.state_balanced:
        return False
    n_per = data.n_rows // data.n_states
    return _kron_flops(n_per, data.n_states, data.n_basis) < _dual_flops(
        data.n_rows, data.n_basis
    )


def _psd_eigh(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a symmetric PSD matrix, clipped at zero."""
    try:
        values, vectors = np.linalg.eigh(matrix)
    except np.linalg.LinAlgError as error:  # pragma: no cover - rare
        raise NumericalError(
            f"eigendecomposition failed in the Kronecker solver: {error}"
        ) from error
    return np.maximum(values, 0.0), vectors


@dataclass
class KroneckerFactors:
    """Factored posterior covariance ``Σ^m = Q·diag(V[m, :])·Qᵀ``.

    Attributes
    ----------
    q, omega:
        Eigenvectors/eigenvalues of the correlation matrix R the solve
        ran at (``R = Q·diag(ω)·Qᵀ``).
    correlation:
        The R itself, kept so M-step consumers can verify they pass the
        same matrix the posterior was solved at.
    mean_rot:
        Rotated posterior mean ``μ̃ = mean · Q`` (M × K).
    vdiag:
        ``V[m, j] = Σ̃_j[m, m]`` (M × K) — the complete description of
        the per-basis covariance blocks; ``None`` when the solve skipped
        the uncertainty pass (``want_blocks=False``).
    lambdas, noise_var:
        The prior scales and σ0² of the solve (for the λ M-step).
    """

    q: np.ndarray
    omega: np.ndarray
    correlation: np.ndarray
    mean_rot: np.ndarray
    vdiag: Optional[np.ndarray]
    lambdas: np.ndarray
    noise_var: float

    def _require_vdiag(self) -> np.ndarray:
        if self.vdiag is None:
            raise NumericalError(
                "posterior covariance factors were not computed (solved "
                "with want_blocks=False); re-solve with want_blocks=True"
            )
        return self.vdiag

    def _check_correlation(self, correlation: np.ndarray) -> None:
        if correlation is not self.correlation and not np.array_equal(
            correlation, self.correlation
        ):
            raise ValueError(
                "M-step correlation differs from the R this posterior "
                "was solved at — the factored statistics would be wrong"
            )

    # ------------------------------------------------------------------
    def materialize_blocks(self) -> np.ndarray:
        """Dense (M, K, K) covariance blocks — tests/inspection only.

        O(M·K²) memory and O(M·K²) time; the fit path never calls this.
        """
        vdiag = self._require_vdiag()
        return np.einsum("kj,mj,lj->mkl", self.q, vdiag, self.q)

    def mstep_lambda_stats(
        self, correlation: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-basis ``(μ^mᵀR⁻¹μ^m, Tr(R⁻¹Σ^m))`` without forming R⁻¹.

        In the rotated frame both collapse to sums over ω: the quadratic
        form is ``Σ_j μ̃[m, j]²/ω_j`` and the trace ``Σ_j V[m, j]/ω_j``;
        the ω factors cancel analytically (μ̃ and V both carry one power
        of ω), so singular R costs nothing here.
        """
        self._check_correlation(correlation)
        vdiag = self._require_vdiag()
        # μ̃[m, j] = ω_j·λ_m^{1/2}·T[m, j]·λ_m^{1/2}/σ0² with finite T, so
        # μ̃²/ω = λ_m·ω·(λ_m^{1/2}T/σ0²)² — recover it from μ̃ directly,
        # zeroing the 0/0 slots a singular R produces (μ̃ is exactly 0
        # there: the posterior mean lives in the range of R).
        with np.errstate(divide="ignore", invalid="ignore"):
            quad_terms = np.where(
                self.omega[None, :] > 0.0,
                self.mean_rot**2 / self.omega[None, :],
                0.0,
            )
            trace_terms = np.where(
                self.omega[None, :] > 0.0,
                vdiag / self.omega[None, :],
                0.0,
            )
        return quad_terms.sum(axis=1), trace_terms.sum(axis=1)

    def mstep_scaled_moment(self, scale: np.ndarray) -> np.ndarray:
        """``Σ_m (Σ^m + μ^m·μ^mᵀ) / scale_m`` — the R-update numerator.

        The covariance part stays factored: ``Σ_m Σ^m/ℓ_m =
        Q·diag(Σ_m V[m,:]/ℓ_m)·Qᵀ``; the mean outer products are a single
        (K × M)(M × K) product. O(M·K² + K³) instead of materializing M
        K×K blocks.
        """
        vdiag = self._require_vdiag()
        scale = np.asarray(scale, dtype=float)
        diag_sum = (vdiag / scale[:, None]).sum(axis=0)  # (K,)
        covariance_part = (self.q * diag_sum) @ self.q.T
        mean = self.mean_rot @ self.q.T  # (M, K) in the original frame
        mean_part = (mean / scale[:, None]).T @ mean
        return covariance_part + mean_part


def compute_posterior_kron(
    data: MultiStateData,
    prior: CorrelatedPrior,
    noise_var: float,
    *,
    want_blocks: bool = True,
) -> "PosteriorResult":
    """Exact C-BMF posterior through the Kronecker identity.

    Requires ``data.state_balanced`` (every state fitted on the same
    design matrix). Numerically equivalent to the dual-space path and the
    ``compute_posterior_dense`` oracle — parity is pinned at rtol ≤ 1e-8
    in the test suite — at O(K³ + M³ + MK·(M+K)) cost.
    """
    from repro.core.posterior import PosteriorResult

    if not data.state_balanced:
        raise ValueError(
            "the Kronecker solver requires state-balanced designs "
            "(identical design matrix in every state)"
        )
    b_matrix = data.shared_design  # (N, M)
    y_matrix = data.targets_matrix()  # (N, K)
    lambdas = prior.lambdas
    correlation = prior.correlation
    n_per, n_basis = b_matrix.shape
    n_states = data.n_states
    n_rows = data.n_rows

    omega, q_matrix = _psd_eigh(correlation)
    sqrt_lam = np.sqrt(lambdas)
    gram = b_matrix.T @ b_matrix  # G = BᵀB (M, M)
    g_tilde = sqrt_lam[:, None] * gram * sqrt_lam[None, :]
    gamma, p_matrix = _psd_eigh(0.5 * (g_tilde + g_tilde.T))

    # denom[i, j] = 1 + ω_j·γ_i/σ0² — the whole posterior in one grid.
    denom = 1.0 + np.outer(gamma, omega) / noise_var  # (M, K)

    w_rot = b_matrix.T @ y_matrix @ q_matrix  # W̃ = Bᵀ·Y·Q (M, K)
    z_matrix = p_matrix.T @ (sqrt_lam[:, None] * w_rot)
    t_matrix = p_matrix @ (z_matrix / denom)  # finite even at λ, ω → 0
    mean_rot = (
        sqrt_lam[:, None] * t_matrix * (omega[None, :] / noise_var)
    )  # μ̃ (M, K)
    mean = mean_rot @ q_matrix.T  # (M, K)

    # Residual and marginal likelihood (see module docstring identities).
    residual = y_matrix - b_matrix @ mean
    residual_sq = float(np.sum(residual * residual))
    quad_prior = float(np.sum(t_matrix**2 * omega[None, :])) / noise_var**2
    log_det = n_rows * float(np.log(noise_var)) + float(
        np.sum(np.log(denom))
    )
    nll = residual_sq / noise_var + quad_prior + log_det

    vdiag = None
    trace_dsd: Optional[float] = None
    if want_blocks:
        inv_denom = 1.0 / denom
        # V[m, j] = Σ̃_j[m, m] = ω_j·λ_m·Σ_i P[m, i]²/denom[i, j]
        vdiag = (
            lambdas[:, None]
            * ((p_matrix**2) @ inv_denom)
            * omega[None, :]
        )
        trace_dsd = float(np.sum((gamma[:, None] * inv_denom) * omega))

    factors = KroneckerFactors(
        q=q_matrix,
        omega=omega,
        correlation=correlation,
        mean_rot=mean_rot,
        vdiag=vdiag,
        lambdas=lambdas,
        noise_var=noise_var,
    )
    return PosteriorResult(
        mean=mean,
        sigma_blocks=None,
        residual_sq=residual_sq,
        trace_dsd=trace_dsd,
        nll=float(nll),
        noise_var=noise_var,
        kron=factors,
    )
