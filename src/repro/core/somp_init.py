"""Modified S-OMP hyper-parameter initializer (Algorithm 1, steps 1-17).

EM only reaches a local optimum, so C-BMF seeds it carefully:

1. the hyper-parameter space is reduced to three scalars — the AR(1) decay
   ``r0`` of the parameterized correlation matrix (eq. 32), the noise level
   ``σ0`` and the support size ``θ``;
2. a greedy S-OMP scan picks the shared template, but — unlike classic
   S-OMP — coefficients on the growing support are solved by the
   *correlated Bayesian inference* (eq. 20-22 with R(r0)), so magnitude
   correlation already informs the residuals;
3. cross-validation over the ``(r0, σ0, θ)`` grid picks the seed, and the
   full prior is assembled with λ = 1 on the selected bases and λ = 1e-5
   elsewhere (step 17).

Performance notes (beyond the paper):

* The Bayesian coefficient solves run **incrementally**. Adding basis m
  to the support perturbs the dual-space kernel by
  ``(φ_m φ_mᵀ) ∘ R[s, s] = V_m V_mᵀ`` with ``V_m = diag(φ_m)·W[s]`` and
  ``W = chol(R)`` — a rank-≤K term — so
  :class:`IncrementalBayesSolver` maintains ``C⁻¹`` through Woodbury
  rank-K updates in O(n²K) per accepted basis instead of refactorizing
  in O(n³) at every greedy step.
* The ``fold × r0 × σ0`` cross-validation cells are independent and run
  through :func:`repro.utils.parallel.parallel_map` — bit-identical for
  any worker count, serial by default (``REPRO_MAX_WORKERS`` overrides).
* State-balanced data (every state fitted on the same design, e.g. the
  swept-frequency datasets) uses :class:`KroneckerBayesSolver` instead:
  the dual kernel is Kronecker, so each greedy step is a p-dimensional
  eigensolve instead of an n×n Woodbury update (n = N·K). The CV folds
  then share one permutation across states, which keeps every train
  split state-balanced (and keeps any Monte-Carlo draw out of the train
  and test sides simultaneously).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import linalg as sla

from repro.core.base import validate_multistate
from repro.core.greedy import select_shared_support
from repro.core.kronecker import (
    KRON_MIN_STATES,
    _psd_eigh,
    resolve_solver_mode,
)
from repro.core.multistate import MultiStateData
from repro.core.prior import CorrelatedPrior, ar1_correlation
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "InitConfig",
    "InitResult",
    "IncrementalBayesSolver",
    "KroneckerBayesSolver",
    "somp_initialize",
]


@dataclass(frozen=True)
class InitConfig:
    """Candidate grid and fold count for the initializer (step 1)."""

    #: Candidate AR(1) decay rates for R (eq. 32); all in [0, 1).
    r0_grid: Tuple[float, ...] = (0.3, 0.7, 0.95)
    #: Candidate noise standard deviations σ0 (same units as the targets;
    #: the CBMF estimator standardizes targets, making these relative).
    sigma0_grid: Tuple[float, ...] = (0.05, 0.15, 0.4)
    #: Candidate support sizes θ.
    n_basis_grid: Tuple[int, ...] = (5, 10, 20, 40)
    #: Cross-validation fold count C.
    n_folds: int = 4

    def __post_init__(self) -> None:
        if not self.r0_grid or not self.sigma0_grid or not self.n_basis_grid:
            raise ValueError("all candidate grids must be non-empty")
        for r0 in self.r0_grid:
            if not 0.0 <= r0 < 1.0:
                raise ValueError(f"r0 candidates must be in [0, 1), got {r0}")
        for sigma0 in self.sigma0_grid:
            if sigma0 <= 0.0:
                raise ValueError("sigma0 candidates must be > 0")
        for theta in self.n_basis_grid:
            if theta < 1:
                raise ValueError("n_basis candidates must be >= 1")
        if self.n_folds < 2:
            raise ValueError("n_folds must be >= 2")


@dataclass
class InitResult:
    """Chosen seed hyper-parameters (steps 16-17)."""

    r0: float
    sigma0: float
    n_basis: int
    support: List[int]
    prior: CorrelatedPrior
    noise_var: float
    cv_errors: Dict[Tuple[float, float, int], float] = field(
        default_factory=dict
    )


class IncrementalBayesSolver:
    """Correlated Bayesian solver with rank-K Woodbury updates (step 9).

    Solves eq. 20-22 with λ = 1 and R = R(r0) on the growing greedy
    support. ``begin`` initializes ``G = C⁻¹ = σ0⁻² I``; every ``extend``
    folds one basis into the kernel through

        C ← C + V_m V_mᵀ,   V_m = diag(φ_m) · W[s],   W = chol(R)

    so ``G ← G − (G V_m)(I_K + V_mᵀ G V_m)⁻¹ (G V_m)ᵀ`` costs O(n²K)
    instead of the O(n³) of a fresh factorization. The returned
    coefficients match :func:`repro.core.posterior.compute_posterior` on
    the same support to floating-point round-off.
    """

    def __init__(self, r0: float, sigma0: float) -> None:
        if not 0.0 <= r0 < 1.0:
            raise ValueError(f"r0 must be in [0, 1), got {r0}")
        if sigma0 <= 0.0:
            raise ValueError(f"sigma0 must be > 0, got {sigma0}")
        self.r0 = float(r0)
        self.sigma0 = float(sigma0)
        self._data: Optional[MultiStateData] = None
        self._support: List[int] = []

    def begin(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> None:
        """Reset to the empty support and initialize ``G = C⁻¹ = I/σ0²``."""
        data = (
            designs
            if isinstance(designs, MultiStateData)
            else MultiStateData.from_states(designs, targets, validate=False)
        )
        correlation = ar1_correlation(data.n_states, self.r0)
        chol = np.linalg.cholesky(correlation)
        self._correlation = correlation
        self._w_rows = chol[data.state_of_row]  # (n, K): row i ← W[s_i]
        n_rows = data.n_rows
        g_matrix = np.zeros((n_rows, n_rows))
        g_matrix.flat[:: n_rows + 1] = 1.0 / self.sigma0**2
        self._g = g_matrix
        self._support = []
        self._data = data

    def extend(self, index: int) -> np.ndarray:
        """Add basis ``index`` to the support via a rank-K Woodbury update
        of ``G`` and return the ``(p, K)`` posterior means on the support."""
        if self._data is None:
            raise RuntimeError("call begin() before extend()")
        data = self._data
        v_matrix = data.phi[:, index, None] * self._w_rows  # (n, K)
        gv = self._g @ v_matrix
        inner = v_matrix.T @ gv
        inner.flat[:: inner.shape[0] + 1] += 1.0
        inner_factor = sla.cho_factor(inner, lower=True, check_finite=False)
        self._g -= gv @ sla.cho_solve(
            inner_factor, gv.T, check_finite=False
        )
        self._support.append(int(index))

        # μ^m = R · W[m, :] with W[m, k] = Σ_{i∈k} Φ[i, m]·(C⁻¹y)[i].
        v = self._g @ data.y
        columns = data.phi[:, self._support]
        w_matrix = data.segment_sum(columns * v[:, None])  # (K, p)
        return w_matrix.T @ self._correlation

    def __call__(
        self,
        sub_designs: List[np.ndarray],
        targets: List[np.ndarray],
    ) -> np.ndarray:
        """One-shot solve on explicit columns (plain-callback compat)."""
        from repro.core.posterior import compute_posterior

        prior = CorrelatedPrior(
            lambdas=np.ones(sub_designs[0].shape[1]),
            correlation=ar1_correlation(len(sub_designs), self.r0),
        )
        posterior = compute_posterior(
            sub_designs, targets, prior, self.sigma0**2, want_blocks=False
        )
        return posterior.mean


class KroneckerBayesSolver:
    """Correlated Bayesian greedy solver for state-balanced data (step 9).

    Functionally identical to :class:`IncrementalBayesSolver` — eq. 20-22
    with λ = 1 and R = R(r0) on the growing support — but exploits one
    shared per-state design B: the dual kernel is then Kronecker
    (``repro.core.kronecker``), and after rotating the targets by the
    eigenvectors of R once in ``begin``, every ``extend`` is a
    p-dimensional eigensolve of the support Gram matrix — O(N·p² + p³ +
    p·K·(p + K)) per accepted basis instead of the O(n²·K) Woodbury
    update with n = N·K. Coefficients match the incremental solver to
    floating-point round-off (test-pinned at 1e-8).
    """

    def __init__(self, r0: float, sigma0: float) -> None:
        if not 0.0 <= r0 < 1.0:
            raise ValueError(f"r0 must be in [0, 1), got {r0}")
        if sigma0 <= 0.0:
            raise ValueError(f"sigma0 must be > 0, got {sigma0}")
        self.r0 = float(r0)
        self.sigma0 = float(sigma0)
        self._design: Optional[np.ndarray] = None
        self._support: List[int] = []

    def begin(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> None:
        """Rotate the targets into R's eigenbasis; reset the support.

        Raises :class:`ValueError` when the states do not share one
        design matrix — callers gate on balance (``_make_solver``).
        """
        data = (
            designs
            if isinstance(designs, MultiStateData)
            else MultiStateData.from_states(designs, targets, validate=False)
        )
        correlation = ar1_correlation(data.n_states, self.r0)
        omega, q = _psd_eigh(correlation)
        self._omega = omega
        self._q = q
        self._design = data.shared_design  # raises if unbalanced
        self._y_rot = data.targets_matrix() @ q  # (N, K)
        self._support = []

    def extend(self, index: int) -> np.ndarray:
        """Add basis ``index``; return the (p, K) posterior means."""
        if self._design is None:
            raise RuntimeError("call begin() before extend()")
        self._support.append(int(index))
        b_sub = self._design[:, self._support]  # (N, p)
        gram = b_sub.T @ b_sub
        gamma, p_mat = _psd_eigh(0.5 * (gram + gram.T))
        z = p_mat.T @ (b_sub.T @ self._y_rot)  # (p, K)
        denom = 1.0 + np.outer(gamma, self._omega) / self.sigma0**2
        mean_rot = (p_mat @ (z / denom)) * (
            self._omega[None, :] / self.sigma0**2
        )
        return mean_rot @ self._q.T

    def __call__(
        self,
        sub_designs: List[np.ndarray],
        targets: List[np.ndarray],
    ) -> np.ndarray:
        """One-shot solve on explicit columns (plain-callback compat)."""
        from repro.core.posterior import compute_posterior

        prior = CorrelatedPrior(
            lambdas=np.ones(sub_designs[0].shape[1]),
            correlation=ar1_correlation(len(sub_designs), self.r0),
        )
        posterior = compute_posterior(
            sub_designs, targets, prior, self.sigma0**2, want_blocks=False
        )
        return posterior.mean


def _balanced_designs(designs: Sequence[np.ndarray]) -> bool:
    """True when every state carries the identical design matrix."""
    first = designs[0]
    for other in designs[1:]:
        if other.shape != first.shape or not np.array_equal(other, first):
            return False
    return True


def _make_solver(r0: float, sigma0: float, designs: Sequence[np.ndarray]):
    """Greedy coefficient solver for this (train) split.

    State-balanced data with enough states takes the Kronecker solver —
    same policy switches as the posterior: ``REPRO_POSTERIOR_SOLVER=dual``
    forces the Woodbury solver everywhere, ``kron`` forces the Kronecker
    solver whenever the data is balanced.
    """
    mode = resolve_solver_mode()
    if (
        mode != "dual"
        and (mode == "kron" or len(designs) >= KRON_MIN_STATES)
        and _balanced_designs(designs)
    ):
        return KroneckerBayesSolver(r0, sigma0)
    return IncrementalBayesSolver(r0, sigma0)


def _fold_indices(
    n_samples: int, n_folds: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Shuffle one state's sample indices into C near-equal folds (step 1)."""
    permutation = rng.permutation(n_samples)
    return [fold for fold in np.array_split(permutation, n_folds)]


def _relative_rms(
    predictions: Sequence[np.ndarray], truths: Sequence[np.ndarray]
) -> float:
    """RMS prediction error normalized by the RMS target magnitude.

    Degenerate folds with identically-zero targets (e.g. constant
    performances after standardization) fall back to the absolute RMS so
    cross-validation still ranks candidates instead of crashing.
    """
    num = sum(float(np.sum((p - t) ** 2)) for p, t in zip(predictions, truths))
    den = sum(float(np.sum(t**2)) for t in truths)
    count = sum(t.size for t in truths)
    if den <= 0.0:
        return float(np.sqrt(num / max(count, 1)))
    return float(np.sqrt(num / den))


def _score_cv_cell(
    cell: Tuple[int, float, float], payload: dict
) -> List[Tuple[int, float]]:
    """Score one (fold, r0, σ0) cross-validation cell.

    One greedy scan to θ_max scores every intermediate θ on the grid.
    Module-level and driven only by its arguments, so it runs identically
    inline or in a spawned worker.
    """
    fold, r0, sigma0 = cell
    train_designs, train_targets, test_designs, test_targets = (
        payload["folds"][fold]
    )
    theta_set = payload["theta_set"]
    n_states = len(train_designs)

    records: Dict[int, Tuple[List[int], np.ndarray]] = {}

    def record(support: List[int], coefficients: np.ndarray) -> None:
        if len(support) in theta_set:
            records[len(support)] = (list(support), coefficients.copy())

    select_shared_support(
        train_designs,
        train_targets,
        payload["theta_max"],
        _make_solver(r0, sigma0, train_designs),
        on_step=record,
    )
    scores: List[Tuple[int, float]] = []
    for theta, (support, coefficients) in sorted(records.items()):
        predictions = [
            test_designs[k][:, support] @ coefficients[:, k]
            for k in range(n_states)
        ]
        scores.append(
            (theta, _relative_rms(predictions, test_targets))
        )
    return scores


def somp_initialize(
    designs: Sequence[np.ndarray],
    targets: Sequence[np.ndarray],
    config: Optional[InitConfig] = None,
    seed: SeedLike = None,
    *,
    max_workers: Optional[int] = None,
) -> InitResult:
    """Run Algorithm 1, steps 1-17, and return the EM seed.

    ``max_workers`` fans the independent cross-validation cells out over
    a process pool (``None`` defers to ``REPRO_MAX_WORKERS``, default
    serial); the returned ``InitResult`` is bit-identical for any worker
    count.
    """
    designs, targets = validate_multistate(designs, targets)
    config = config or InitConfig()
    rng = as_generator(seed)
    n_states = len(designs)
    n_basis_total = designs[0].shape[1]

    theta_grid = sorted(
        {min(theta, n_basis_total) for theta in config.n_basis_grid}
    )
    theta_max = max(theta_grid)

    # State-balanced data shares ONE fold permutation across states: the
    # train/test splits then stay state-balanced (so the CV cells keep
    # Kronecker-solver eligibility) and a shared Monte-Carlo draw never
    # lands in the train rows of one state and the test rows of another.
    mode = resolve_solver_mode()
    if (
        mode != "dual"
        and (mode == "kron" or n_states >= KRON_MIN_STATES)
        and _balanced_designs(designs)
    ):
        shared_folds = _fold_indices(
            designs[0].shape[0], config.n_folds, rng
        )
        folds_per_state = [shared_folds] * n_states
    else:
        folds_per_state = [
            _fold_indices(d.shape[0], config.n_folds, rng) for d in designs
        ]

    # Per-fold train/test splits, derived once and shared by every
    # (r0, σ0) candidate of that fold.
    folds = []
    for fold in range(config.n_folds):
        train_designs, train_targets = [], []
        test_designs, test_targets = [], []
        for k in range(n_states):
            test_idx = folds_per_state[k][fold]
            mask = np.ones(designs[k].shape[0], dtype=bool)
            mask[test_idx] = False
            train_designs.append(designs[k][mask])
            train_targets.append(targets[k][mask])
            test_designs.append(designs[k][test_idx])
            test_targets.append(targets[k][test_idx])
        folds.append(
            (train_designs, train_targets, test_designs, test_targets)
        )

    # Note the Bayesian solve stays well-posed for supports larger than
    # the per-state sample count (the prior regularizes), so θ is only
    # capped by the dictionary size.
    cells = [
        (fold, r0, sigma0)
        for fold in range(config.n_folds)
        for r0, sigma0 in itertools.product(
            config.r0_grid, config.sigma0_grid
        )
    ]
    payload = {
        "folds": folds,
        "theta_set": frozenset(theta_grid),
        "theta_max": theta_max,
    }
    cell_scores = parallel_map(
        _score_cv_cell, cells, shared=payload, max_workers=max_workers
    )

    cv_errors: Dict[Tuple[float, float, int], List[float]] = {
        (r0, sigma0, theta): []
        for r0, sigma0, theta in itertools.product(
            config.r0_grid, config.sigma0_grid, theta_grid
        )
    }
    for (fold, r0, sigma0), scores in zip(cells, cell_scores):
        for theta, error in scores:
            cv_errors[(r0, sigma0, theta)].append(error)

    averaged = {
        key: float(np.mean(values))
        for key, values in cv_errors.items()
        if values
    }
    if not averaged:
        raise RuntimeError(
            "cross-validation produced no scores; training folds are too "
            "small for every candidate support size"
        )
    best_key = min(averaged, key=averaged.get)
    best_r0, best_sigma0, best_theta = best_key

    # Final scan on the full training data with the winning candidates.
    support, _ = select_shared_support(
        designs,
        targets,
        best_theta,
        _make_solver(best_r0, best_sigma0, designs),
    )
    prior = CorrelatedPrior.from_support(
        n_basis=n_basis_total,
        n_states=n_states,
        active=np.asarray(support),
        r0=best_r0,
    )
    return InitResult(
        r0=best_r0,
        sigma0=best_sigma0,
        n_basis=best_theta,
        support=support,
        prior=prior,
        noise_var=best_sigma0**2,
        cv_errors=averaged,
    )
