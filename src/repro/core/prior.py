"""The unified correlated prior of C-BMF (paper Section 3.1).

Coefficients are organized per basis function: ``α_m ∈ R^K`` collects the
coefficient of basis ``m`` in every state (eq. 6-7). The prior is

    α_m ~ N(0, λ_m · R),    α_i ⊥ α_j (i ≠ j)          (eq. 8, 10-11)

* ``λ_m = 0`` forces basis m to zero in *every* state — sparsity plus the
  shared template;
* off-diagonal structure in ``R`` correlates coefficient *magnitudes*
  across states — the information S-OMP discards;
* one shared ``R`` for all bases (eq. 9) keeps the hyper-parameter count at
  ``M + K(K+1)/2 + 1``.

``ar1_correlation`` builds the single-parameter family ``R[i,j] = r0^|i−j|``
(eq. 32) used to seed the EM refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.linalg import is_psd, symmetrize
from repro.utils.validation import check_in_range, check_square, check_vector

__all__ = ["CorrelatedPrior", "ar1_correlation"]


def ar1_correlation(n_states: int, r0: float) -> np.ndarray:
    """The parameterized correlation matrix ``R[i,j] = r0^|i−j|`` (eq. 32).

    Valid for ``0 ≤ r0 < 1``; the result is symmetric positive definite
    with unit diagonal. Correlation decays with state-index distance —
    adjacent knob codes are most alike.
    """
    if n_states < 1:
        raise ValueError(f"n_states must be >= 1, got {n_states}")
    r0 = check_in_range(r0, "r0", 0.0, 1.0, inclusive=False) if r0 != 0.0 \
        else 0.0
    indexes = np.arange(n_states)
    return r0 ** np.abs(indexes[:, None] - indexes[None, :])


@dataclass
class CorrelatedPrior:
    """Hyper-parameters of the C-BMF prior: ``{λ_1..λ_M, R}``.

    Attributes
    ----------
    lambdas:
        Per-basis sparsity parameters, shape (M,), all ≥ 0.
    correlation:
        Cross-state covariance structure ``R``, shape (K, K), symmetric
        positive semi-definite.
    """

    lambdas: np.ndarray
    correlation: np.ndarray

    def __post_init__(self) -> None:
        self.lambdas = check_vector(self.lambdas, "lambdas")
        if np.any(self.lambdas < 0.0):
            raise ValueError("lambdas must be non-negative")
        self.correlation = symmetrize(
            check_square(self.correlation, "correlation")
        )
        if not is_psd(self.correlation, tol=1e-8):
            raise ValueError("correlation matrix must be PSD")

    # ------------------------------------------------------------------
    @classmethod
    def from_support(
        cls,
        n_basis: int,
        n_states: int,
        active: np.ndarray,
        r0: float,
        active_value: float = 1.0,
        inactive_value: float = 1e-5,
    ) -> "CorrelatedPrior":
        """Initializer used by Algorithm 1 step 17.

        Bases in ``active`` get ``λ = active_value``; all others get the
        paper's near-zero ``λ = 1e-5``. ``R`` starts as the AR(1) family.
        """
        active = np.asarray(active, dtype=int)
        if active.size and (active.min() < 0 or active.max() >= n_basis):
            raise ValueError(
                f"active indices must lie in 0..{n_basis - 1}"
            )
        lambdas = np.full(n_basis, inactive_value, dtype=float)
        lambdas[active] = active_value
        return cls(
            lambdas=lambdas, correlation=ar1_correlation(n_states, r0)
        )

    # ------------------------------------------------------------------
    @property
    def n_basis(self) -> int:
        """Number of basis functions M."""
        return self.lambdas.shape[0]

    @property
    def n_states(self) -> int:
        """Number of states K."""
        return self.correlation.shape[0]

    def active_set(self, threshold: float = 1e-4) -> np.ndarray:
        """Bases whose λ exceeds ``threshold`` × max(λ)."""
        peak = float(self.lambdas.max(initial=0.0))
        if peak <= 0.0:
            return np.array([], dtype=int)
        return np.flatnonzero(self.lambdas > threshold * peak)

    def block_covariance(self, m: int) -> np.ndarray:
        """Prior covariance ``λ_m · R`` of basis m's coefficients (eq. 8)."""
        if not 0 <= m < self.n_basis:
            raise IndexError(f"basis index {m} out of range 0..{self.n_basis - 1}")
        return self.lambdas[m] * self.correlation

    def full_covariance(self) -> np.ndarray:
        """The dense ``MK × MK`` prior covariance ``A`` (eq. 11).

        Only for inspection and small-problem tests — the estimators never
        materialize this matrix.
        """
        k = self.n_states
        size = self.n_basis * k
        full = np.zeros((size, size))
        for m in range(self.n_basis):
            block = slice(m * k, (m + 1) * k)
            full[block, block] = self.block_covariance(m)
        return full

    def normalized(self) -> "CorrelatedPrior":
        """Rescale so ``R`` has unit mean diagonal, folding scale into λ.

        ``λ_m·R`` is invariant under ``(λ_m, R) → (cλ_m, R/c)``; pinning the
        scale of R keeps EM iterates comparable across runs.
        """
        scale = float(np.mean(np.diag(self.correlation)))
        if scale <= 0.0:
            raise ValueError("correlation diagonal must have positive mean")
        return CorrelatedPrior(
            lambdas=self.lambdas * scale,
            correlation=self.correlation / scale,
        )
