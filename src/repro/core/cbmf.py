"""The C-BMF estimator: the paper's Algorithm 1, end to end.

``CBMF`` follows the estimator protocol of this package (fit on per-state
design matrices and targets, coefficients in ``coef_``) and internally runs

1. per-state target standardization (centering plus one pooled scale), so
   the unit-λ Bayesian solves of the initializer are well-scaled for any
   metric (dB, dBm, ...);
2. the modified S-OMP + cross-validation hyper-parameter initializer;
3. EM refinement of ``{λ, R, σ0}`` with the MAP coefficients from the
   final posterior.

The per-state centers are folded back into the model's intercept column
when the basis has one (any all-ones column), otherwise kept as explicit
per-state offsets applied at prediction time.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.base import MultiStateRegressor, validate_multistate
from repro.core.em import EmConfig, run_em
from repro.core.prior import CorrelatedPrior
from repro.core.predictive import PosteriorPredictor
from repro.core.results import FitReport
from repro.core.somp_init import InitConfig, somp_initialize
from repro.utils.rng import SeedLike

__all__ = ["CBMF"]

#: Keys a dict-form ``warm_start`` must carry (see :meth:`CBMF.warm_state`).
_WARM_KEYS = {"lambdas", "correlation", "noise_std", "scale", "r0"}


def _find_intercept_column(designs: Sequence[np.ndarray]) -> Optional[int]:
    """Index of a column that equals 1 in every design, or None."""
    n_basis = designs[0].shape[1]
    for column in range(n_basis):
        if all(np.allclose(d[:, column], 1.0) for d in designs):
            return column
    return None


class CBMF(MultiStateRegressor):
    """Correlated Bayesian Model Fusion estimator.

    Parameters
    ----------
    init_config:
        Candidate grid/folds for the S-OMP initializer; defaults match the
        package-wide defaults of :class:`InitConfig`.
    em_config:
        EM iteration knobs; see :class:`EmConfig`.
    seed:
        Seed for the cross-validation fold shuffling.
    max_workers:
        Processes for the initializer's cross-validation grid (``None``
        defers to the ``REPRO_MAX_WORKERS`` environment variable, default
        serial). Any worker count returns bit-identical fits.
    warm_start:
        A previously fitted ``CBMF`` on the same basis/state layout — or
        the dict exported by :meth:`warm_state` from one. Its learned
        ``{λ, R, σ0}`` seed EM directly and the S-OMP cross-validation
        initializer is skipped — the incremental-sampling fast path.
        The dict form lets a checkpointed loop resume with numerically
        identical warm starts without pickling estimator objects.

    Attributes (after ``fit``)
    --------------------------
    coef_:
        (K, M) MAP coefficients in original target units.
    offsets_:
        (K,) additive per-state offsets (all zero when the basis has an
        intercept column to absorb them).
    prior_:
        The learned :class:`CorrelatedPrior` (λ and R after EM).
    noise_std_:
        Learned observation noise σ0 in original units.
    center_:
        The grand target center subtracted before standardization (the
        streaming updater needs it to standardize incoming targets the
        same way this fit did).
    scale_:
        The pooled standardization scale (read-only property).
    report_:
        :class:`FitReport` with the full fitting diagnostics.
    """

    def __init__(
        self,
        init_config: Optional[InitConfig] = None,
        em_config: Optional[EmConfig] = None,
        seed: SeedLike = None,
        max_workers: Optional[int] = None,
        warm_start: Optional["CBMF"] = None,
    ) -> None:
        if isinstance(warm_start, CBMF) and warm_start.prior_ is None:
            raise ValueError(
                "warm_start estimator must be fitted (its prior_ is None)"
            )
        if isinstance(warm_start, dict):
            missing = _WARM_KEYS - set(warm_start)
            if missing:
                raise ValueError(
                    f"warm_start dict is missing keys {sorted(missing)}"
                )
        self.init_config = init_config or InitConfig()
        self.em_config = em_config or EmConfig()
        self.seed = seed
        self.max_workers = max_workers
        self.warm_start = warm_start
        self.coef_: Optional[np.ndarray] = None
        self.offsets_: Optional[np.ndarray] = None
        self.prior_ = None
        self.noise_std_: Optional[float] = None
        self.report_: Optional[FitReport] = None
        self.center_: Optional[float] = None
        self._scale: float = 1.0
        self._predictor: Optional[PosteriorPredictor] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> "CBMF":
        designs, targets = validate_multistate(designs, targets)
        n_states = len(designs)

        # Standardize with a single grand center and one pooled scale. A
        # *per-state* center would be tempting, but it discards cross-state
        # mean structure: the intercept coefficients of neighbouring states
        # are themselves correlated, and leaving the state means in the
        # data lets the prior fuse them like any other basis.
        grand_center = float(np.mean(np.concatenate(targets)))
        centered = [t - grand_center for t in targets]
        scale = float(
            np.sqrt(
                np.mean([np.mean(c**2) for c in centered])
            )
        )
        if scale <= 0.0:
            scale = 1.0
        standardized = [c / scale for c in centered]

        started = time.perf_counter()
        init = self._initial_guess(designs, standardized, scale)
        init_seconds = time.perf_counter() - started

        prior, noise_var, posterior, trace = run_em(
            designs, standardized, init.prior, init.noise_var, self.em_config
        )

        coef = posterior.coef * scale  # (K, M)
        offsets = np.full(n_states, grand_center)
        intercept = _find_intercept_column(designs)
        if intercept is not None:
            coef = coef.copy()
            coef[:, intercept] += grand_center
            offsets = np.zeros(n_states)

        self.coef_ = coef
        self.offsets_ = offsets
        self.prior_ = prior
        self.noise_std_ = float(np.sqrt(noise_var)) * scale
        self.center_ = grand_center
        self._scale = scale
        self._predictor = PosteriorPredictor(
            designs, standardized, prior, noise_var
        )
        active_threshold = self.em_config.prune_threshold or 1e-4
        self.report_ = FitReport(
            init=init,
            em=trace,
            n_active=int(prior.active_set(active_threshold).size),
            noise_std=self.noise_std_,
            init_seconds=init_seconds,
            em_seconds=trace.seconds,
        )
        return self

    # ------------------------------------------------------------------
    def _initial_guess(self, designs, standardized, scale):
        """EM seed: the modified S-OMP initializer, or a warm start.

        A warm start reuses the hyper-parameters of a previously fitted
        CBMF on the same (basis, state) layout — the incremental-sampling
        case, where rerunning the full cross-validation every round would
        dominate the loop. λ and σ0 are rescaled from the old
        standardization to the new one; EM then refines them on the
        enlarged data.
        """
        from repro.core.somp_init import InitResult

        warm = self.warm_start
        if warm is None:
            return somp_initialize(
                designs,
                standardized,
                self.init_config,
                self.seed,
                max_workers=self.max_workers,
            )
        if isinstance(warm, CBMF):
            warm = warm.warm_state()
        lambdas = np.asarray(warm["lambdas"], dtype=float)
        correlation = np.asarray(warm["correlation"], dtype=float)
        if lambdas.shape[0] != designs[0].shape[1]:
            raise ValueError(
                f"warm-start prior has {lambdas.shape[0]} bases, "
                f"designs have {designs[0].shape[1]}"
            )
        if correlation.shape[0] != len(designs):
            raise ValueError(
                f"warm-start prior has {correlation.shape[0]} states, "
                f"got {len(designs)}"
            )
        rescale = (float(warm["scale"]) / scale) ** 2
        prior = CorrelatedPrior(
            lambdas=lambdas * rescale,
            correlation=correlation.copy(),
        )
        noise_var = max((float(warm["noise_std"]) / scale) ** 2, 1e-12)
        support = prior.active_set(1e-4)
        return InitResult(
            r0=float(warm["r0"]),
            sigma0=float(np.sqrt(noise_var)),
            n_basis=int(support.size),
            support=support.tolist(),
            prior=prior,
            noise_var=noise_var,
            cv_errors={},
        )

    def warm_state(self) -> dict:
        """Snapshot of the learned hyper-parameters for warm restarts.

        The dict (numpy arrays plus plain floats — trivially serialized
        to npz/JSON) can be passed back as ``warm_start`` to a fresh
        ``CBMF`` and yields a warm start numerically identical to passing
        the fitted estimator itself. Checkpoint/resume loops persist this
        instead of pickling the model.
        """
        self._require_fitted()
        return {
            "lambdas": self.prior_.lambdas.copy(),
            "correlation": self.prior_.correlation.copy(),
            "noise_std": float(self.noise_std_),
            "scale": float(self._scale),
            "r0": float(self.report_.init.r0),
        }

    @property
    def scale_(self) -> float:
        """The pooled target standardization scale of this fit."""
        self._require_fitted()
        return self._scale

    @property
    def predictor(self) -> PosteriorPredictor:
        """The fitted :class:`PosteriorPredictor` (standardized targets).

        Means/stds from this object live on the internal standardized
        target scale; multiply by nothing for *ranking* purposes (the
        scale is a positive constant) or use :meth:`predict_std` for
        values in original units. Exposed so acquisition strategies can
        run fantasy-conditioned batch selection via
        :meth:`PosteriorPredictor.augmented`.
        """
        self._require_fitted()
        return self._predictor

    def predict(self, design: np.ndarray, state: int) -> np.ndarray:
        """Predict one state, including any per-state offset."""
        prediction = super().predict(design, state)
        if self.offsets_ is not None and self.offsets_[state] != 0.0:
            prediction = prediction + self.offsets_[state]
        return prediction

    def predict_std(
        self,
        design: np.ndarray,
        state: int,
        include_noise: bool = False,
    ) -> np.ndarray:
        """Posterior-predictive standard deviation, in target units.

        The Bayesian posterior provides calibrated error bars for free;
        ``include_noise=True`` adds the learned observation noise (spread
        of a fresh simulation rather than of the latent performance).
        """
        self._require_fitted()
        std = self._predictor.predict_std(design, state, include_noise)
        return std * self._scale
