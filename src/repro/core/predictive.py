"""Posterior-predictive uncertainty for the C-BMF model.

The C-BMF model is a Gaussian process in disguise: marginalizing the
coefficients, two observations — row i in state s_i with basis vector φ_i,
and a query point in state k with basis vector φ — share the covariance

    k((k, φ), (s_i, φ_i)) = R[k, s_i] · φᵀ Λ φ_i

with Λ = diag(λ). The predictive distribution of a new observation follows
from the standard GP conditioning identities using the same ``C = σ0²·I +
(Φ Λ Φᵀ) ∘ R[s, s]`` matrix the MAP solve already factorizes:

    mean  = kᵀ C⁻¹ y                      (identical to the MAP prediction)
    var   = R[k,k]·φᵀΛφ − kᵀ C⁻¹ k  (+ σ0² for a new *measurement*)

This gives every C-BMF fit calibrated error bars at the cost of one
triangular solve per query batch — useful to decide *where* the next
simulation samples buy the most accuracy (see
``applications/adaptive_sampling.py``).

The predictor is also the **online-update primitive** of the streaming
subsystem: :meth:`PosteriorPredictor.absorb` appends a fresh batch of b
observations by *extending* the Cholesky factor of C with one Schur
complement block —

    C' = [[C, B], [Bᵀ, D]]  →  L' = [[L, 0], [L21, chol(D − L21 L21ᵀ)]]

with ``L21ᵀ = L⁻¹ B`` — an O(n²·b) update instead of the O((n+b)³)
refactorization. The Cholesky factor of a positive-definite matrix is
unique, so an absorbed predictor is numerically identical to one built
from scratch on the concatenated data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy import linalg as sla

from repro.core.base import validate_multistate
from repro.core.kronecker import (
    KRON_MIN_STATES,
    _psd_eigh,
    resolve_solver_mode,
)
from repro.core.prior import CorrelatedPrior
from repro.errors import NumericalError
from repro.utils.linalg import cholesky_factor
from repro.utils.validation import check_matrix

__all__ = ["PosteriorPredictor"]


def _shared_design(designs: Sequence[np.ndarray]) -> Optional[np.ndarray]:
    """The common per-state design when every state carries the same one."""
    first = designs[0]
    for other in designs[1:]:
        if other.shape != first.shape or not np.array_equal(other, first):
            return None
    return first


class PosteriorPredictor:
    """Predictive mean/std for a fitted correlated-prior model.

    Parameters
    ----------
    designs, targets:
        The training data the model was fitted on (standardized scale).
    prior:
        The (post-EM) hyper-parameters.
    noise_var:
        The learned observation noise σ0².
    """

    def __init__(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
        prior: CorrelatedPrior,
        noise_var: float,
    ) -> None:
        designs, targets = validate_multistate(designs, targets)
        if noise_var <= 0.0:
            raise ValueError(f"noise_var must be > 0, got {noise_var}")
        if prior.n_states != len(designs):
            raise ValueError(
                f"prior has {prior.n_states} states, got {len(designs)}"
            )
        if prior.n_basis != designs[0].shape[1]:
            raise ValueError(
                f"prior has {prior.n_basis} bases, designs have "
                f"{designs[0].shape[1]}"
            )
        self._prior = prior
        self._noise_var = noise_var
        self._phi = np.vstack(designs)
        self._y = np.concatenate(targets)
        self._state_of_row = np.concatenate(
            [np.full(d.shape[0], k, dtype=int) for k, d in enumerate(designs)]
        )
        # Kronecker factors (populated in kron mode only).
        self._kron_u: Optional[np.ndarray] = None
        self._kron_q: Optional[np.ndarray] = None
        self._kron_denom: Optional[np.ndarray] = None

        mode = resolve_solver_mode()
        shared = (
            _shared_design(designs) if mode != "dual" else None
        )
        if shared is not None and (
            mode == "kron" or len(designs) >= KRON_MIN_STATES
        ):
            self._mode = "kron"
            self._init_kron(shared, np.stack(targets, axis=1))
        else:
            self._mode = "dense"
            self._init_dense()

    def _init_dense(self) -> None:
        """Factorize the full n×n kernel matrix C (general path)."""
        gram = (self._phi * self._prior.lambdas) @ self._phi.T
        r_expanded = self._prior.correlation[
            np.ix_(self._state_of_row, self._state_of_row)
        ]
        self._factor: Optional[np.ndarray] = cholesky_factor(
            gram * r_expanded + self._noise_var * np.eye(self._phi.shape[0])
        )
        self._alpha = sla.cho_solve(
            (self._factor, True), self._y, check_finite=False
        )
        self._kron_u = self._kron_q = self._kron_denom = None

    def _init_kron(self, design: np.ndarray, y_matrix: np.ndarray) -> None:
        """Diagonalize C = R ⊗ H + σ0²·I without materializing it.

        With one shared per-state design B (rows state-major in the
        stacked ``_phi``), the kernel matrix factorizes as ``C = R ⊗ H +
        σ0²·I`` with ``H = B Λ Bᵀ`` (N × N). Eigendecomposing both
        factors — ``H = U diag(h) Uᵀ``, ``R = Q diag(ω) Qᵀ`` — gives
        ``C = (Q ⊗ U) diag(σ0² + h_i ω_j) (Q ⊗ U)ᵀ``, so the dual
        weights α = C⁻¹y and every query quadratic form cost
        O(N³ + K³ + NK·(N + K)) instead of O((NK)³).
        """
        lam = self._prior.lambdas
        h_mat = (design * lam) @ design.T
        h, u = _psd_eigh(0.5 * (h_mat + h_mat.T))
        omega, q = _psd_eigh(self._prior.correlation)
        denom = self._noise_var + np.outer(h, omega)  # (N, K), all > 0
        y_rot = u.T @ y_matrix @ q
        alpha = u @ (y_rot / denom) @ q.T  # (N, K), column k = state k
        self._kron_u = u
        self._kron_q = q
        self._kron_denom = denom
        self._alpha = alpha.T.ravel()  # state-major, matching _phi rows
        self._factor = None

    def _densify(self) -> None:
        """Swap from Kronecker factors to the dense Cholesky factor.

        ``absorb`` extends C row-wise, which breaks the Kronecker
        structure (the absorbed state gains rows the others lack), so the
        first absorb on a Kronecker-mode predictor pays one dense
        factorization and continues on the dense path. Raises
        :class:`NumericalError` if C cannot be factorized — never a
        silently wrong answer.
        """
        self._init_dense()
        self._mode = "dense"

    # ------------------------------------------------------------------
    @property
    def solver(self) -> str:
        """Active representation: ``"kron"`` or ``"dense"``."""
        return self._mode

    @property
    def n_rows(self) -> int:
        """Training rows currently conditioned on (grows with absorb)."""
        return self._phi.shape[0]

    @property
    def prior(self) -> CorrelatedPrior:
        """The (frozen) hyper-parameters this predictor conditions with."""
        return self._prior

    @property
    def noise_var(self) -> float:
        """The observation-noise variance σ0² of this predictor."""
        return self._noise_var

    def training_rows(self):
        """Views of the conditioned rows: ``(phi, targets, state_of_row)``.

        Read-only by convention — mutating them would desynchronize the
        cached Cholesky factor. Streaming refits read the accumulated
        data back out through this.
        """
        return self._phi, self._y, self._state_of_row

    @property
    def dual_weights(self) -> np.ndarray:
        """The dual-space weights α = C⁻¹ y (one per training row).

        The MAP coefficients are a linear image of these:
        ``μ^m = λ_m · R · Σ_i Φ[i, m]·α_i`` — the streaming updater
        recomputes its coefficient matrix from them after each absorb.
        """
        return self._alpha

    # ------------------------------------------------------------------
    def absorb(
        self, design: np.ndarray, target: np.ndarray, state: int
    ) -> None:
        """Condition on a fresh batch of observations, in place.

        Appends ``design`` (b × M basis rows) with observed values
        ``target`` at knob ``state`` to the training set and extends the
        Cholesky factor of C by the batch's Schur-complement block — an
        O(n²·b) update at the frozen ``{λ, R, σ0}`` instead of the
        O((n+b)³) refactorization a from-scratch rebuild performs. The
        result is numerically identical to constructing a new
        :class:`PosteriorPredictor` on the concatenated data (the
        Cholesky factor of a positive-definite matrix is unique).
        """
        design = check_matrix(
            design, "design", shape=(None, self._prior.n_basis)
        )
        target = np.asarray(target, dtype=float).reshape(-1)
        if target.shape[0] != design.shape[0]:
            raise ValueError(
                f"target has {target.shape[0]} values for "
                f"{design.shape[0]} design rows"
            )
        if not 0 <= state < self._prior.n_states:
            raise IndexError(
                f"state {state} out of range 0..{self._prior.n_states - 1}"
            )
        if not (np.all(np.isfinite(design)) and np.all(np.isfinite(target))):
            raise ValueError(
                "absorb refuses non-finite design/target values; "
                "quarantine the batch upstream"
            )
        if self._mode == "kron":
            self._densify()

        n_old = self._phi.shape[0]
        n_new = design.shape[0]
        # Cross block B (n_old × b) is exactly the query kernel; the new
        # diagonal block D adds the batch self-kernel plus σ0².
        cross = self._cross_covariance(design, state)
        weighted = design * self._prior.lambdas
        diag_block = (
            self._prior.correlation[state, state] * (weighted @ design.T)
        )
        diag_block = 0.5 * (diag_block + diag_block.T)
        diag_block.flat[:: n_new + 1] += self._noise_var
        # L21ᵀ = L⁻¹ B, Schur complement S = D − L21 L21ᵀ.
        l21_t = sla.solve_triangular(
            self._factor, cross, lower=True, check_finite=False
        )
        schur = diag_block - l21_t.T @ l21_t
        schur_factor = cholesky_factor(schur)

        factor = np.zeros((n_old + n_new, n_old + n_new))
        factor[:n_old, :n_old] = self._factor
        factor[n_old:, :n_old] = l21_t.T
        factor[n_old:, n_old:] = schur_factor
        self._factor = factor
        self._phi = np.vstack([self._phi, design])
        self._y = np.concatenate([self._y, target])
        self._state_of_row = np.concatenate(
            [self._state_of_row, np.full(n_new, state, dtype=int)]
        )
        self._alpha = sla.cho_solve(
            (self._factor, True), self._y, check_finite=False
        )

    # ------------------------------------------------------------------
    def _cross_covariance(self, design: np.ndarray, state: int) -> np.ndarray:
        """k(query, training): (n_train × n_query)."""
        weighted = self._phi * self._prior.lambdas  # n_train × M
        kernel = weighted @ design.T  # n_train × n_query
        kernel *= self._prior.correlation[self._state_of_row, state][:, None]
        return kernel

    def predict_mean(self, design: np.ndarray, state: int) -> np.ndarray:
        """Predictive mean (equals the MAP-coefficient prediction)."""
        design = check_matrix(
            design, "design", shape=(None, self._prior.n_basis)
        )
        if not 0 <= state < self._prior.n_states:
            raise IndexError(
                f"state {state} out of range 0..{self._prior.n_states - 1}"
            )
        return self._cross_covariance(design, state).T @ self._alpha

    def augmented(self, design: np.ndarray, state: int) -> "PosteriorPredictor":
        """A copy conditioned on extra observations at ``design``/``state``.

        The pseudo-targets are the current predictive means, i.e. a
        "fantasy" update: the predictive mean function is unchanged while
        the predictive variance shrinks exactly as it would for real
        observations (the GP variance never depends on the targets).
        Acquisition loops use this to score a *batch* of candidates
        jointly — greedily conditioning on each pick so the next pick is
        not redundant with it — before any simulation is spent.
        """
        design = check_matrix(
            design, "design", shape=(None, self._prior.n_basis)
        )
        if not 0 <= state < self._prior.n_states:
            raise IndexError(
                f"state {state} out of range 0..{self._prior.n_states - 1}"
            )
        pseudo = self.predict_mean(design, state)
        designs: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for k in range(self._prior.n_states):
            mask = self._state_of_row == k
            block = self._phi[mask]
            values = self._y[mask]
            if k == state:
                block = np.vstack([block, design])
                values = np.concatenate([values, pseudo])
            designs.append(block)
            targets.append(values)
        return PosteriorPredictor(
            designs, targets, self._prior, self._noise_var
        )

    def predict_std(
        self,
        design: np.ndarray,
        state: int,
        include_noise: bool = False,
    ) -> np.ndarray:
        """Predictive standard deviation per query row.

        ``include_noise=True`` adds the observation noise σ0² — the spread
        of a new *simulation result*, not just of the latent performance.
        """
        design = check_matrix(
            design, "design", shape=(None, self._prior.n_basis)
        )
        if not 0 <= state < self._prior.n_states:
            raise IndexError(
                f"state {state} out of range 0..{self._prior.n_states - 1}"
            )
        prior_var = self._prior.correlation[state, state] * np.einsum(
            "ij,j,ij->i", design, self._prior.lambdas, design
        )
        if self._mode == "kron":
            # Query kernel separates: k_q = R[:, s] ⊗ (B Λ φ_q), so
            # kᵀC⁻¹k = Σ_{i,j} (Uᵀ B Λ φ_q)_i² (Qᵀ R[:, s])_j² / denom_ij.
            n_per = self._kron_u.shape[0]
            w = self._phi[:n_per] @ (design * self._prior.lambdas).T
            a_sq = (self._kron_u.T @ w) ** 2  # (N, n_query)
            c_sq = (self._kron_q.T @ self._prior.correlation[:, state]) ** 2
            inner = (1.0 / self._kron_denom) @ c_sq  # (N,)
            quad = np.einsum("iq,i->q", a_sq, inner)
        else:
            kernel = self._cross_covariance(design, state)
            half = sla.solve_triangular(
                self._factor, kernel, lower=True, check_finite=False
            )
            quad = np.einsum("ij,ij->j", half, half)
        variance = prior_var - quad
        variance = np.maximum(variance, 0.0)
        if not np.all(np.isfinite(variance)):
            raise NumericalError(
                f"non-finite predictive variance for state {state} "
                f"({int(np.sum(~np.isfinite(variance)))} of "
                f"{variance.size} queries)"
            )
        if include_noise:
            variance = variance + self._noise_var
        return np.sqrt(variance)

    def pass_probability(
        self,
        design: np.ndarray,
        state: int,
        bound: float,
        kind: str = "max",
        include_noise: bool = True,
    ) -> np.ndarray:
        """Posterior-predictive probability that each query meets a bound.

        Under the Gaussian predictive ``y ~ N(μ, σ²)`` the probability of
        ``y ≤ bound`` (``kind="max"``) is ``Φ((bound − μ)/σ)``; a
        ``kind="min"`` spec takes the complement. This is the per-sample
        building block of the yield service: averaging it over process
        samples gives a spec-pass probability that accounts for *model*
        uncertainty, not just process spread. ``include_noise=True``
        asks about a new measured value rather than the latent mean.
        """
        from scipy.stats import norm

        if kind not in ("max", "min"):
            raise ValueError(f"kind must be 'max' or 'min', got {kind!r}")
        if not np.isfinite(bound):
            raise ValueError(f"bound must be finite, got {bound!r}")
        mean = self.predict_mean(design, state)
        std = self.predict_std(design, state, include_noise=include_noise)
        with np.errstate(divide="ignore"):
            z = np.where(std > 0.0, (float(bound) - mean) / std, np.inf)
        # σ = 0 collapses to a deterministic pass/fail at the mean.
        z = np.where(
            (std > 0.0) | (mean <= float(bound)), z, -np.inf
        )
        probability = norm.cdf(z)
        return probability if kind == "max" else 1.0 - probability
