"""State clustering for mutually-different states (paper Section 5).

The paper's conclusion notes that C-BMF assumes a unified correlation model
across all states and that, when states are *mutually different* (e.g. a
knob that switches topology rather than bias), "a clustering algorithm is
needed to group similar states into clusters before applying the proposed
C-BMF algorithm". This module implements that extension:

* :func:`cluster_states` builds a cheap per-state signature — least-squares
  coefficients on one shared S-OMP template, so the template selection
  pools all states' samples — and groups states by average-linkage
  hierarchical clustering on the cosine distance between signatures;
* :class:`ClusteredCBMF` runs one C-BMF per cluster and reassembles the
  full (K, M) coefficient matrix.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import pdist

from repro.core.base import MultiStateRegressor, validate_multistate
from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig
from repro.utils.rng import SeedLike
from repro.utils.validation import check_integer

__all__ = ["cluster_states", "ClusteredCBMF"]


def state_signatures(
    designs: Sequence[np.ndarray],
    targets: Sequence[np.ndarray],
    ridge: float = 1.0,
    kind: str = "somp",
) -> np.ndarray:
    """Per-state sensitivity signatures used as clustering features.

    ``kind="somp"`` (default) first runs one shared S-OMP scan — whose
    basis ranking *pools* every state's samples and therefore stays
    reliable even when any single state's N_k ≪ M — then takes each
    state's least-squares coefficients on that shared support as its
    signature. A state from a different family carries near-zero weight on
    the other family's bases, so the cosine distance separates families
    sharply. ``kind="ridge"`` fits per-state ridge coefficients over the
    full dictionary instead (only sensible when N_k is comparable to M).
    Only the signature *direction* matters downstream.
    """
    designs, targets = validate_multistate(designs, targets)
    if ridge <= 0.0:
        raise ValueError(f"ridge must be > 0, got {ridge}")
    if kind not in ("somp", "ridge"):
        raise ValueError(
            f"kind must be 'somp' or 'ridge', got {kind!r}"
        )
    centered = [t - t.mean() for t in targets]
    if kind == "somp":
        return _shared_support_signatures(designs, centered, ridge)
    signatures = []
    for design, target in zip(designs, centered):
        gram = design.T @ design + ridge * np.eye(design.shape[1])
        signatures.append(np.linalg.solve(gram, design.T @ target))
    return np.vstack(signatures)


def _shared_support_signatures(
    designs: List[np.ndarray],
    targets: List[np.ndarray],
    ridge: float,
) -> np.ndarray:
    """Per-state ridge coefficients on one shared greedy support.

    The support is kept to at most half the smallest per-state sample
    count and the per-state solve is ridge-regularized — an unregularized
    LS at p ≈ N would interpolate noise and wash out the family structure
    the signature exists to expose.
    """
    from repro.core.greedy import select_shared_support

    n_basis = designs[0].shape[1]
    min_samples = min(d.shape[0] for d in designs)
    support_size = max(2, min(20, min_samples // 2, n_basis))

    def ridge_solver(sub_designs, sub_targets):
        columns = []
        for design, target in zip(sub_designs, sub_targets):
            gram = design.T @ design + ridge * np.eye(design.shape[1])
            columns.append(np.linalg.solve(gram, design.T @ target))
        return np.column_stack(columns)

    _, coefficients = select_shared_support(
        designs, targets, support_size, ridge_solver
    )
    return coefficients.T  # (K, support_size)


def cluster_states(
    designs: Sequence[np.ndarray],
    targets: Sequence[np.ndarray],
    n_clusters: int,
    ridge: float = 1.0,
    kind: str = "somp",
) -> np.ndarray:
    """Group states into ``n_clusters`` by coefficient-direction similarity.

    Returns 0-based cluster labels of length K.
    """
    designs, targets = validate_multistate(designs, targets)
    n_states = len(designs)
    n_clusters = check_integer(n_clusters, "n_clusters", minimum=1)
    if n_clusters > n_states:
        raise ValueError(
            f"n_clusters={n_clusters} exceeds the state count {n_states}"
        )
    if n_clusters == 1:
        return np.zeros(n_states, dtype=int)
    features = state_signatures(designs, targets, ridge, kind)
    # Guard cosine distance against all-zero signatures.
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    features = features / np.maximum(norms, 1e-12)
    distances = pdist(features, metric="cosine")
    tree = linkage(distances, method="average")
    labels = fcluster(tree, t=n_clusters, criterion="maxclust") - 1
    return labels.astype(int)


class ClusteredCBMF(MultiStateRegressor):
    """C-BMF applied per cluster of mutually-similar states.

    Parameters
    ----------
    n_clusters:
        Number of state clusters. ``1`` reduces to plain C-BMF.
    init_config / em_config / seed:
        Forwarded to each per-cluster :class:`CBMF`.
    ridge:
        Ridge strength of the clustering signatures.
    """

    def __init__(
        self,
        n_clusters: int = 2,
        init_config: Optional[InitConfig] = None,
        em_config: Optional[EmConfig] = None,
        seed: SeedLike = None,
        ridge: float = 1.0,
    ) -> None:
        self.n_clusters = check_integer(n_clusters, "n_clusters", minimum=1)
        self.init_config = init_config
        self.em_config = em_config
        self.seed = seed
        self.ridge = ridge
        self.coef_: Optional[np.ndarray] = None
        self.offsets_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.models_: Optional[List[CBMF]] = None

    def fit(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> "ClusteredCBMF":
        designs, targets = validate_multistate(designs, targets)
        n_states = len(designs)
        n_basis = designs[0].shape[1]
        labels = cluster_states(
            designs, targets, min(self.n_clusters, n_states), self.ridge
        )

        coef = np.zeros((n_states, n_basis))
        offsets = np.zeros(n_states)
        models: List[CBMF] = []
        for cluster in range(labels.max() + 1):
            members = np.flatnonzero(labels == cluster)
            model = CBMF(
                init_config=self.init_config,
                em_config=self.em_config,
                seed=self.seed,
            )
            model.fit(
                [designs[k] for k in members],
                [targets[k] for k in members],
            )
            coef[members] = model.coef_
            offsets[members] = model.offsets_
            models.append(model)

        self.labels_ = labels
        self.models_ = models
        self.coef_ = coef
        self.offsets_ = offsets
        return self

    def predict(self, design: np.ndarray, state: int) -> np.ndarray:
        """Predict one state, including any per-state offset."""
        prediction = super().predict(design, state)
        if self.offsets_ is not None and self.offsets_[state] != 0.0:
            prediction = prediction + self.offsets_[state]
        return prediction
