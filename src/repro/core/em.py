"""EM refinement of the C-BMF hyper-parameters (paper Section 3.3).

Starting from the S-OMP/cross-validation initial guess, each iteration
alternates:

* **E-step** — the posterior mean blocks ``μ_p^m`` and covariance blocks
  ``Σ_p^m`` at the current ``Ω = {λ, R, σ0}`` (eq. 19-21);
* **M-step** — the closed-form updates (eq. 29-31):

    λ_m ← ( μ^mᵀ R⁻¹ μ^m + Tr(R⁻¹ Σ^m) ) / K
    R   ← (1/M) Σ_m ( Σ^m + μ^m μ^mᵀ ) / λ_m
    σ0² ← ( ‖y − Dμ‖² + Tr(D Σ_p Dᵀ) ) / N_total

Implementation notes beyond the paper:

* **Pruning.** Bases whose λ falls below ``prune_threshold × max(λ)`` are
  frozen (their EM fixed point is λ_m ← λ_m and their limit contribution to
  the R update is exactly the current R), and excluded from the posterior
  solve. This is the standard sparse-Bayesian-learning acceleration; set
  ``prune_threshold=0`` for the literal full-M iteration.
* **Scale pinning.** ``λ_m·R`` is invariant to ``(cλ, R/c)``; after every R
  update the pair is renormalized so R keeps a unit mean diagonal.
* **PSD guarding.** The R update is symmetrized and eigenvalue-floored so
  round-off can never leave the PSD cone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import validate_multistate
from repro.core.multistate import MultiStateData
from repro.core.posterior import PosteriorResult, compute_posterior
from repro.core.prior import CorrelatedPrior
from repro.utils.linalg import nearest_psd, symmetrize

__all__ = ["EmConfig", "EmTrace", "run_em"]


@dataclass(frozen=True)
class EmConfig:
    """Knobs of the EM iteration."""

    #: Hard iteration cap.
    max_iterations: int = 60
    #: Convergence: relative NLL change below this stops the iteration.
    tolerance: float = 1e-5
    #: Relative λ threshold below which a basis is frozen and excluded
    #: from the posterior solve. The default 0 disables pruning — the
    #: paper-literal full-M iteration, which measurably beats aggressive
    #: pruning on diffuse circuits (many moderately-important bases).
    #: Set ~1e-4 to trade a little accuracy for faster EM at large M.
    prune_threshold: float = 0.0
    #: Lower bound on λ to keep the prior proper.
    lambda_floor: float = 1e-12
    #: Eigenvalue floor applied to the updated R.
    r_eigenvalue_floor: float = 1e-6
    #: Learn R (eq. 30); False keeps the initial R fixed (ablation).
    update_r: bool = True
    #: Force R diagonal each update — recovers uncorrelated (classic BMF
    #: style) magnitudes while keeping the shared template (ablation).
    diagonal_r: bool = False
    #: Learn σ0 (eq. 31); False keeps the initial value.
    update_noise: bool = True
    #: Lower bound on σ0².
    min_noise_var: float = 1e-12

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be > 0")
        if self.prune_threshold < 0.0:
            raise ValueError("prune_threshold must be >= 0")


@dataclass
class EmTrace:
    """Diagnostics of one EM run."""

    nll_history: List[float] = field(default_factory=list)
    active_history: List[int] = field(default_factory=list)
    noise_history: List[float] = field(default_factory=list)
    converged: bool = False
    seconds: float = 0.0
    #: Wall-clock spent in the E-step posterior solves (incl. the final
    #: full-basis solve), for profiling the fit path.
    posterior_seconds: float = 0.0
    #: Wall-clock spent in the closed-form M-step updates.
    mstep_seconds: float = 0.0

    @property
    def n_iterations(self) -> int:
        """Completed EM iterations."""
        return len(self.nll_history)


def run_em(
    designs: Sequence[np.ndarray],
    targets: Sequence[np.ndarray],
    prior: CorrelatedPrior,
    noise_var: float,
    config: Optional[EmConfig] = None,
) -> Tuple[CorrelatedPrior, float, PosteriorResult, EmTrace]:
    """Refine ``{λ, R, σ0}`` by EM and return the final posterior.

    Returns ``(prior, noise_var, posterior, trace)`` where ``posterior`` is
    evaluated at the final hyper-parameters over the **full** basis set
    (pruned bases re-enter with their frozen near-zero λ, so the returned
    mean has shape (M, K) regardless of pruning).
    """
    designs, targets = validate_multistate(designs, targets)
    config = config or EmConfig()
    started = time.perf_counter()

    data = MultiStateData.from_states(designs, targets, validate=False)
    n_states = data.n_states
    n_basis = data.n_basis
    n_total = data.n_rows
    lambdas = prior.lambdas.copy()
    correlation = prior.correlation.copy()
    trace = EmTrace()

    previous_nll: Optional[float] = None
    for _ in range(config.max_iterations):
        active = _active_set(lambdas, config.prune_threshold)
        sub_data = data.restrict(active)
        sub_prior = CorrelatedPrior(
            lambdas=lambdas[active], correlation=correlation
        )
        e_started = time.perf_counter()
        posterior = compute_posterior(
            sub_data, prior=sub_prior, noise_var=noise_var, want_blocks=True
        )
        trace.posterior_seconds += time.perf_counter() - e_started
        trace.nll_history.append(posterior.nll)
        trace.active_history.append(int(active.size))
        trace.noise_history.append(noise_var)

        # ---------------- M-step ----------------
        # The moment contractions live on PosteriorResult so each solver
        # representation (dense (M, K, K) blocks vs Kronecker factors)
        # supplies them without materializing the other's form.
        m_started = time.perf_counter()
        quad, traces = posterior.mstep_lambda_stats(correlation)
        new_lambdas = lambdas.copy()
        new_lambdas[active] = np.maximum(
            (quad + traces) / n_states, config.lambda_floor
        )

        if config.update_r:
            safe_lambda = np.maximum(new_lambdas[active], config.lambda_floor)
            # Frozen bases contribute their EM limit: the current R each.
            n_frozen = n_basis - active.size
            summed = (
                posterior.mstep_scaled_moment(safe_lambda)
                + n_frozen * correlation
            )
            new_r = symmetrize(summed / n_basis)
            if config.diagonal_r:
                new_r = np.diag(np.diag(new_r))
            new_r = nearest_psd(new_r, floor=config.r_eigenvalue_floor)
        else:
            new_r = correlation

        if config.update_noise:
            noise_var = max(
                (posterior.residual_sq + posterior.require_trace_dsd())
                / n_total,
                config.min_noise_var,
            )

        # Pin the (λ, R) scale.
        scale = float(np.mean(np.diag(new_r)))
        lambdas = new_lambdas * scale
        correlation = new_r / scale
        trace.mstep_seconds += time.perf_counter() - m_started

        if previous_nll is not None:
            denom = max(abs(previous_nll), 1.0)
            if abs(previous_nll - posterior.nll) / denom < config.tolerance:
                trace.converged = True
                break
        previous_nll = posterior.nll

    final_prior = CorrelatedPrior(lambdas=lambdas, correlation=correlation)
    e_started = time.perf_counter()
    final_posterior = _full_posterior(data, final_prior, noise_var, config)
    trace.posterior_seconds += time.perf_counter() - e_started
    trace.seconds = time.perf_counter() - started
    return final_prior, noise_var, final_posterior, trace


def _active_set(lambdas: np.ndarray, threshold: float) -> np.ndarray:
    """Bases retained in the posterior solve."""
    if threshold <= 0.0:
        return np.arange(lambdas.shape[0])
    peak = float(lambdas.max(initial=0.0))
    active = np.flatnonzero(lambdas > threshold * peak)
    if active.size == 0:
        # Degenerate prior — keep the single largest λ to stay solvable.
        active = np.array([int(np.argmax(lambdas))])
    return active


def _full_posterior(
    data: MultiStateData,
    prior: CorrelatedPrior,
    noise_var: float,
    config: EmConfig,
) -> PosteriorResult:
    """Final MAP solve with the mean expanded back to the full basis set."""
    active = _active_set(prior.lambdas, config.prune_threshold)
    sub_prior = CorrelatedPrior(
        lambdas=prior.lambdas[active], correlation=prior.correlation
    )
    sub = compute_posterior(
        data.restrict(active),
        prior=sub_prior,
        noise_var=noise_var,
        want_blocks=False,
    )
    n_basis = data.n_basis
    mean = np.zeros((n_basis, sub.mean.shape[1]))
    mean[active] = sub.mean
    return PosteriorResult(
        mean=mean,
        sigma_blocks=None,
        residual_sq=sub.residual_sq,
        trace_dsd=sub.trace_dsd,
        nll=sub.nll,
        noise_var=noise_var,
    )
