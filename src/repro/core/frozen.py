"""Frozen (deployable) performance models.

A fitted estimator carries training data, hyper-parameters and diagnostics;
what downstream tools need is only the coefficient matrix. ``FrozenModel``
captures that — the (K × M) coefficients, per-state offsets and metadata —
and round-trips through a single ``.npz`` file, so a model fitted once can
be shipped to yield/corner/tuning flows without the fitting stack.

    frozen = FrozenModel.from_estimator(model, metric="nf_db")
    frozen.save("lna_nf.npz")
    ...
    frozen = FrozenModel.load("lna_nf.npz")
    frozen.predict(design, state)
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.base import MultiStateRegressor
from repro.utils.validation import check_matrix, check_vector

__all__ = ["FrozenModel"]


class FrozenModel(MultiStateRegressor):
    """An immutable coefficient-only performance model.

    Parameters
    ----------
    coef:
        Coefficient matrix, shape (K, M).
    offsets:
        Optional per-state additive offsets (length K); zero when absent.
    metric:
        Optional metric name carried as metadata.
    basis_names:
        Optional basis-function names (length M) for reporting.
    correlation:
        Optional learned (K × K) inter-state correlation matrix. A
        C-BMF fit learns it as part of the prior; carrying it with the
        frozen artifact lets downstream consumers (the yield/moment
        estimation service) share statistical strength across states
        long after the fitting stack is gone.
    """

    def __init__(
        self,
        coef: np.ndarray,
        offsets: Optional[np.ndarray] = None,
        metric: str = "",
        basis_names: Optional[tuple] = None,
        correlation: Optional[np.ndarray] = None,
    ) -> None:
        self.coef_ = check_matrix(coef, "coef")
        n_states = self.coef_.shape[0]
        if offsets is None:
            offsets = np.zeros(n_states)
        self.offsets_ = check_vector(offsets, "offsets", length=n_states)
        self.metric = str(metric)
        if basis_names is not None:
            if len(basis_names) != self.coef_.shape[1]:
                raise ValueError(
                    f"basis_names has {len(basis_names)} entries for "
                    f"{self.coef_.shape[1]} coefficients"
                )
            basis_names = tuple(str(name) for name in basis_names)
        self.basis_names = basis_names
        if correlation is not None:
            correlation = check_matrix(
                correlation, "correlation", shape=(n_states, n_states)
            )
        self.correlation_ = correlation

    # ------------------------------------------------------------------
    @classmethod
    def from_estimator(
        cls,
        estimator: MultiStateRegressor,
        metric: str = "",
        basis_names: Optional[tuple] = None,
    ) -> "FrozenModel":
        """Freeze any fitted estimator's coefficients."""
        estimator._require_fitted()
        offsets = getattr(estimator, "offsets_", None)
        prior = getattr(estimator, "prior_", None)
        correlation = getattr(prior, "correlation", None)
        return cls(
            coef=np.array(estimator.coef_, copy=True),
            offsets=None if offsets is None else np.array(offsets, copy=True),
            metric=metric,
            basis_names=basis_names,
            correlation=(
                None if correlation is None else np.array(correlation, copy=True)
            ),
        )

    # ------------------------------------------------------------------
    def fit(self, designs, targets) -> "FrozenModel":
        raise NotImplementedError(
            "FrozenModel is immutable; fit the original estimator and "
            "freeze it again"
        )

    def predict(self, design: np.ndarray, state: int) -> np.ndarray:
        """Predict one state, applying its offset."""
        prediction = super().predict(design, state)
        if self.offsets_[state] != 0.0:
            prediction = prediction + self.offsets_[state]
        return prediction

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialize to a compressed ``.npz`` file."""
        payload = {
            "coef": self.coef_,
            "offsets": self.offsets_,
            "metric": np.array(self.metric),
        }
        if self.basis_names is not None:
            payload["basis_names"] = np.array(list(self.basis_names))
        if self.correlation_ is not None:
            payload["correlation"] = self.correlation_
        np.savez_compressed(Path(path), **payload)

    @classmethod
    def load(cls, path) -> "FrozenModel":
        """Load a model written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            missing = [key for key in ("coef", "offsets") if key not in data]
            if missing:
                raise ValueError(
                    f"{path} is not a FrozenModel archive: missing "
                    f"key(s) {', '.join(missing)} "
                    f"(found: {', '.join(sorted(data.files)) or 'none'})"
                )
            basis_names = None
            if "basis_names" in data:
                basis_names = tuple(str(n) for n in data["basis_names"])
            correlation = data["correlation"] if "correlation" in data else None
            return cls(
                coef=data["coef"],
                offsets=data["offsets"],
                metric=str(data["metric"]),
                basis_names=basis_names,
                correlation=correlation,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrozenModel(metric={self.metric!r}, K={self.coef_.shape[0]}, "
            f"M={self.coef_.shape[1]})"
        )
