"""One modeling experiment: dataset in, per-metric errors and costs out.

``ModelingExperiment`` is the engine behind every table and figure of the
reproduction: it basis-expands a training and a testing dataset once, then
fits any registered estimator per performance metric, scoring with the
paper's relative modeling error and accounting cost with a ``CostModel``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.basis.dictionary import BasisDictionary
from repro.core.base import MultiStateRegressor
from repro.evaluation.error import modeling_error_percent
from repro.evaluation.methods import make_estimator
from repro.simulate.cost import CostModel, ModelingCost
from repro.simulate.dataset import Dataset
from repro.utils.rng import SeedLike

__all__ = ["MethodResult", "ModelingExperiment"]


@dataclass
class MethodResult:
    """Outcome of fitting one method on one training set."""

    method: str
    n_train_total: int
    #: metric → modeling error, percent.
    errors: Dict[str, float] = field(default_factory=dict)
    #: metric → fitting wall-clock, seconds.
    fit_seconds: Dict[str, float] = field(default_factory=dict)
    #: Cost breakdown (simulation + total fitting), when a CostModel is set.
    cost: Optional[ModelingCost] = None

    @property
    def total_fit_seconds(self) -> float:
        """Fitting time summed over metrics (the paper's fitting cost)."""
        return float(sum(self.fit_seconds.values()))


class ModelingExperiment:
    """Fit-and-score harness over a fixed train/test pair.

    Parameters
    ----------
    train / test:
        Datasets with identical state counts and metric lists. The test
        set plays the paper's role of 50 held-out samples per state.
    basis:
        Basis dictionary shared by all states (the paper uses linear).
    cost_model:
        Optional per-sample simulation cost for the cost rows of the
        tables.
    """

    def __init__(
        self,
        train: Dataset,
        test: Dataset,
        basis: BasisDictionary,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if train.n_states != test.n_states:
            raise ValueError(
                f"train has {train.n_states} states, test has "
                f"{test.n_states}"
            )
        if train.metric_names != test.metric_names:
            raise ValueError(
                "train and test datasets disagree on metrics: "
                f"{train.metric_names} vs {test.metric_names}"
            )
        if basis.n_variables != train.n_variables:
            raise ValueError(
                f"basis expects {basis.n_variables} variables, dataset has "
                f"{train.n_variables}"
            )
        self.train = train
        self.test = test
        self.basis = basis
        self.cost_model = cost_model
        self._train_designs = basis.expand_states(train.inputs())
        self._test_designs = basis.expand_states(test.inputs())

    # ------------------------------------------------------------------
    @property
    def metric_names(self):
        """Metrics scored by :meth:`run`."""
        return self.train.metric_names

    def run(
        self,
        method: Union[str, MultiStateRegressor],
        metrics: Optional[Sequence[str]] = None,
        seed: SeedLike = None,
    ) -> MethodResult:
        """Fit ``method`` on every requested metric and score it.

        ``method`` is a registry name (a fresh estimator per metric) or an
        estimator instance (then only one metric may be requested, since
        fitting overwrites its state).
        """
        requested = tuple(metrics) if metrics is not None \
            else self.train.metric_names
        for metric in requested:
            if metric not in self.train.metric_names:
                raise KeyError(
                    f"unknown metric {metric!r}; dataset has "
                    f"{self.train.metric_names}"
                )
        if isinstance(method, MultiStateRegressor) and len(requested) > 1:
            raise ValueError(
                "pass a registry name to score multiple metrics; an "
                "estimator instance can only fit one"
            )

        name = method if isinstance(method, str) else type(method).__name__
        result = MethodResult(
            method=name, n_train_total=self.train.n_samples_total
        )
        for metric in requested:
            estimator = (
                make_estimator(method, seed)
                if isinstance(method, str)
                else method
            )
            targets = self.train.targets(metric)
            started = time.perf_counter()
            estimator.fit(self._train_designs, targets)
            result.fit_seconds[metric] = time.perf_counter() - started

            predictions = [
                estimator.predict(design, k)
                for k, design in enumerate(self._test_designs)
            ]
            result.errors[metric] = modeling_error_percent(
                predictions, self.test.targets(metric)
            )

        if self.cost_model is not None:
            result.cost = self.cost_model.cost(
                self.train.n_samples_total, result.total_fit_seconds
            )
        return result
