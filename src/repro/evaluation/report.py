"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.evaluation.experiment import MethodResult
from repro.evaluation.sweep import SweepResult

__all__ = [
    "format_active_history",
    "format_comparison_table",
    "format_fit_profile",
    "format_sweep_table",
]


def format_comparison_table(
    title: str,
    results: Sequence[MethodResult],
    metric_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a paper-style cost/error comparison (Tables 1 and 2).

    One column per method; rows are training-sample counts, per-metric
    modeling errors, then the cost breakdown when available.
    """
    if not results:
        raise ValueError("at least one result is required")
    metric_labels = metric_labels or {}
    metrics = list(results[0].errors)
    width = max(18, max(len(r.method) for r in results) + 2)

    def row(label: str, cells: Sequence[str]) -> str:
        return (
            f"{label:<34}"
            + "".join(f"{cell:>{width}}" for cell in cells)
        )

    lines = [title, "=" * (34 + width * len(results))]
    lines.append(row("", [r.method for r in results]))
    lines.append(
        row(
            "Number of training samples",
            [str(r.n_train_total) for r in results],
        )
    )
    for metric in metrics:
        label = metric_labels.get(metric, metric)
        lines.append(
            row(
                f"Modeling error for {label}",
                [f"{r.errors[metric]:.3f}%" for r in results],
            )
        )
    if all(r.cost is not None for r in results):
        lines.append(
            row(
                "Simulation cost (Hours)",
                [f"{r.cost.simulation_hours:.2f}" for r in results],
            )
        )
        lines.append(
            row(
                "Fitting cost (Sec.)",
                [f"{r.cost.fitting_seconds:.2f}" for r in results],
            )
        )
        lines.append(
            row(
                "Overall modeling cost (Hours)",
                [f"{r.cost.total_hours:.2f}" for r in results],
            )
        )
    return "\n".join(lines)


def format_active_history(history, title: Optional[str] = None) -> str:
    """Render an active-learning run round by round.

    ``history`` is a :class:`repro.active.history.FitHistory`; one row
    per round — samples spent when the model was fitted, samples the
    acquisition then added, rows quarantined after failed simulations,
    the holdout RMSE (and best so far), which refit path produced the
    model, and the wall time. Rounds that took a graceful-degradation
    path (see ``RoundRecord.degraded``) get an extra indented line per
    marker, so a degraded run can never render identically to a healthy
    one.
    """
    header = title or (
        f"active fit — strategy={history.strategy} "
        f"metric={history.metric}"
    )
    lines = [
        header,
        f"{'round':>6}{'samples':>9}{'added':>7}{'quar':>6}{'rmse':>12}"
        f"{'best':>12}  {'refit':<10}{'sec':>8}",
    ]
    for record in history.rounds:
        lines.append(
            f"{record.round_index:>6}{record.n_samples_total:>9}"
            f"{sum(record.n_added_per_state):>7}"
            f"{record.n_quarantined:>6}"
            f"{record.holdout_rmse:>12.5f}{record.best_rmse:>12.5f}  "
            f"{record.refit:<10}{record.wall_seconds:>8.2f}"
        )
        for marker in record.degraded:
            lines.append(f"{'':>6}  degraded: {marker}")
    if history.total_quarantined:
        lines.append(
            f"quarantined: {history.total_quarantined} simulation row(s)"
        )
    if history.stop_reason:
        lines.append(f"stopped: {history.stop_reason}")
    return "\n".join(lines)


def format_fit_profile(report, title: Optional[str] = None) -> str:
    """Render a wall-clock breakdown of one C-BMF fit.

    ``report`` is a :class:`repro.core.results.FitReport`; the profile
    splits the total into the S-OMP/cross-validation initializer and the
    EM refinement, and the EM time further into posterior (E-step) solves
    vs closed-form M-step updates — the two knobs perf work targets.
    """
    trace = report.em
    total = report.total_seconds

    def row(label: str, seconds: float, of: float) -> str:
        share = 100.0 * seconds / of if of > 0 else 0.0
        return f"  {label:<28}{seconds:>9.3f}s {share:>6.1f}%"

    other = max(
        trace.seconds - trace.posterior_seconds - trace.mstep_seconds, 0.0
    )
    lines = [
        title or "fit profile",
        row("somp init (CV grid)", report.init_seconds, total),
        row("em refinement", report.em_seconds, total),
        row("  posterior solves", trace.posterior_seconds, trace.seconds),
        row("  m-step updates", trace.mstep_seconds, trace.seconds),
        row("  other (bookkeeping)", other, trace.seconds),
        f"  {'total':<28}{total:>9.3f}s "
        f"({trace.n_iterations} EM iterations, "
        f"{report.n_active} active bases)",
    ]
    return "\n".join(lines)


def format_sweep_table(
    title: str,
    sweep: SweepResult,
    metric: str,
    metric_label: Optional[str] = None,
) -> str:
    """Render one figure panel (error vs. samples) as a text table."""
    label = metric_label or metric
    methods = sorted(sweep.results)
    header = f"{'samples(total)':>16}" + "".join(
        f"{m:>16}" for m in methods
    )
    lines = [f"{title} — modeling error for {label} (%)", header]
    totals = sweep.n_total_grid()
    for index, total in enumerate(totals):
        cells = "".join(
            f"{sweep.results[m][index].errors[metric]:>15.3f}%"
            for m in methods
        )
        lines.append(f"{total:>16}" + cells)
    return "\n".join(lines)
