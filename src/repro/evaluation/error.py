"""The paper's modeling-error metric.

Section 4 reports "modeling error" percentages on a held-out testing set
(50 samples per state). We use the standard relative error of performance
modeling papers from this group: RMS prediction error normalized by the
mean performance magnitude, pooled over all states,

    error% = 100 · sqrt( Σ (ŷ − y)² / N_total ) / ( Σ |y| / N_total )

This matches the order of magnitude the paper reports (fractions of a
percent for NF, a few percent for IIP3-class metrics). ``rmse`` and
``nrmse_by_std`` are provided for users who prefer unnormalized or
sigma-normalized views.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.validation import check_same_length, check_vector

__all__ = [
    "modeling_error_percent",
    "per_state_errors",
    "rmse",
    "nrmse_by_std",
]


def _flatten(
    predictions: Sequence[np.ndarray], truths: Sequence[np.ndarray]
):
    check_same_length("predictions", predictions, "truths", truths)
    if len(predictions) == 0:
        raise ValueError("at least one state is required")
    flat_p: List[np.ndarray] = []
    flat_t: List[np.ndarray] = []
    for k, (prediction, truth) in enumerate(zip(predictions, truths)):
        prediction = check_vector(prediction, f"predictions[{k}]")
        truth = check_vector(truth, f"truths[{k}]", length=prediction.shape[0])
        flat_p.append(prediction)
        flat_t.append(truth)
    return np.concatenate(flat_p), np.concatenate(flat_t)


def rmse(
    predictions: Sequence[np.ndarray], truths: Sequence[np.ndarray]
) -> float:
    """Root-mean-square prediction error pooled over states."""
    prediction, truth = _flatten(predictions, truths)
    return float(np.sqrt(np.mean((prediction - truth) ** 2)))


def modeling_error_percent(
    predictions: Sequence[np.ndarray], truths: Sequence[np.ndarray]
) -> float:
    """The paper's relative modeling error, in percent."""
    prediction, truth = _flatten(predictions, truths)
    magnitude = float(np.mean(np.abs(truth)))
    if magnitude <= 0.0:
        raise ValueError(
            "mean target magnitude is zero; the relative error is undefined"
        )
    error = float(np.sqrt(np.mean((prediction - truth) ** 2)))
    return 100.0 * error / magnitude


def per_state_errors(
    predictions: Sequence[np.ndarray], truths: Sequence[np.ndarray]
) -> np.ndarray:
    """Relative modeling error (percent) of each state separately.

    The pooled :func:`modeling_error_percent` is what the paper reports;
    the per-state breakdown shows *where* a model struggles — typically
    the extreme knob codes, whose coefficients have the fewest correlated
    neighbours.
    """
    check_same_length("predictions", predictions, "truths", truths)
    if len(predictions) == 0:
        raise ValueError("at least one state is required")
    errors = []
    for k, (prediction, truth) in enumerate(zip(predictions, truths)):
        errors.append(
            modeling_error_percent([prediction], [truth])
        )
    return np.asarray(errors)


def nrmse_by_std(
    predictions: Sequence[np.ndarray], truths: Sequence[np.ndarray]
) -> float:
    """RMSE normalized by the pooled target standard deviation.

    1.0 means the model is no better than predicting each state's pooled
    mean — useful to judge whether a model captures any variation at all.
    """
    prediction, truth = _flatten(predictions, truths)
    spread = float(np.std(truth))
    if spread <= 0.0:
        raise ValueError("targets have zero variance")
    return float(np.sqrt(np.mean((prediction - truth) ** 2))) / spread
