"""Multi-seed repetition: error bars for the modeling experiments.

A single train/test draw gives one noisy error number; the paper's curves
are likewise single realizations. ``repeat_experiment`` re-simulates the
dataset under several seeds and reports mean ± std per method/metric —
the honest way to claim "method A beats method B" on a synthetic substrate.

Repetitions are independent (each owns its seed), so they run through
:func:`repro.utils.parallel.parallel_map` — serial by default, fanned out
over processes with ``max_workers``/``REPRO_MAX_WORKERS``, bit-identical
either way because every repetition's randomness is fixed by
``base_seed + r`` before dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.basis.polynomial import LinearBasis
from repro.circuits.base import TunableCircuit
from repro.evaluation.experiment import ModelingExperiment
from repro.simulate.montecarlo import MonteCarloEngine
from repro.utils.parallel import parallel_map
from repro.utils.validation import check_integer

__all__ = ["RepeatedResult", "repeat_experiment"]


@dataclass
class RepeatedResult:
    """Aggregated errors over repeated dataset realizations."""

    methods: Tuple[str, ...]
    metric_names: Tuple[str, ...]
    n_repetitions: int
    #: (method, metric) → list of per-repetition errors (percent).
    samples: Dict[Tuple[str, str], List[float]] = field(default_factory=dict)

    def mean(self, method: str, metric: str) -> float:
        """Mean error over repetitions, percent."""
        return float(np.mean(self.samples[(method, metric)]))

    def std(self, method: str, metric: str) -> float:
        """Std of the error over repetitions, percent."""
        return float(np.std(self.samples[(method, metric)]))

    def wins(self, challenger: str, incumbent: str, metric: str) -> int:
        """Repetitions where ``challenger`` strictly beat ``incumbent``."""
        a = self.samples[(challenger, metric)]
        b = self.samples[(incumbent, metric)]
        return int(sum(x < y for x, y in zip(a, b)))

    def format(self) -> str:
        """Text table: mean ± std per method/metric."""
        width = 18
        header = f"{'metric':<12}" + "".join(
            f"{m:>{width}}" for m in self.methods
        )
        lines = [
            f"errors over {self.n_repetitions} repetitions (mean ± std, %)",
            header,
        ]
        for metric in self.metric_names:
            cells = "".join(
                f"{self.mean(m, metric):>10.3f} ±{self.std(m, metric):5.3f}"
                for m in self.methods
            )
            lines.append(f"{metric:<12}" + cells)
        return "\n".join(lines)


def _run_repetition(seed: int, payload: dict) -> Dict[Tuple[str, str], float]:
    """One repetition cell: simulate under ``seed``, fit and score all
    methods. Module-level so it pickles under the spawn start method."""
    circuit = payload["circuit"]
    engine = MonteCarloEngine(circuit, seed=seed)
    data = engine.run(payload["n_train"] + payload["n_test"])
    train, test = data.split(payload["n_train"])
    experiment = ModelingExperiment(train, test, payload["basis"])
    errors: Dict[Tuple[str, str], float] = {}
    for method in payload["methods"]:
        run = experiment.run(
            method, metrics=payload["metric_names"], seed=seed
        )
        for metric in payload["metric_names"]:
            errors[(method, metric)] = run.errors[metric]
    return errors


def repeat_experiment(
    circuit: TunableCircuit,
    methods: Sequence[str],
    n_train_per_state: int,
    n_test_per_state: int,
    n_repetitions: int = 5,
    base_seed: int = 0,
    metrics: Sequence[str] = None,
    max_workers: Optional[int] = None,
) -> RepeatedResult:
    """Run the fit-and-score experiment under ``n_repetitions`` dataset seeds.

    Each repetition draws a fresh train+test dataset from the circuit (seed
    ``base_seed + r``), fits every method, and scores the paper's modeling
    error. Deterministic given ``base_seed`` — including under
    ``max_workers > 1``, which distributes repetitions over processes
    without touching any seed.
    """
    n_train_per_state = check_integer(
        n_train_per_state, "n_train_per_state", minimum=2
    )
    n_test_per_state = check_integer(
        n_test_per_state, "n_test_per_state", minimum=1
    )
    n_repetitions = check_integer(n_repetitions, "n_repetitions", minimum=1)
    if not methods:
        raise ValueError("at least one method is required")
    metric_names = tuple(metrics) if metrics else circuit.metric_names

    basis = LinearBasis(circuit.n_variables)
    result = RepeatedResult(
        methods=tuple(methods),
        metric_names=metric_names,
        n_repetitions=n_repetitions,
    )
    for method in methods:
        for metric in metric_names:
            result.samples[(method, metric)] = []

    payload = {
        "circuit": circuit,
        "methods": tuple(methods),
        "metric_names": metric_names,
        "n_train": n_train_per_state,
        "n_test": n_test_per_state,
        "basis": basis,
    }
    seeds = [base_seed + repetition for repetition in range(n_repetitions)]
    per_repetition = parallel_map(
        _run_repetition, seeds, shared=payload, max_workers=max_workers
    )
    for errors in per_repetition:
        for key, value in errors.items():
            result.samples[key].append(value)
    return result
