"""Terminal plots for sweep results (no plotting libraries required).

The paper's figures are log-y error-vs-samples curves; these helpers
render the same series as aligned ASCII charts so the benchmark output and
the CLI show the *shape* directly in a terminal or CI log.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.evaluation.sweep import SweepResult

__all__ = ["ascii_chart", "sweep_chart"]

_BARS = "▁▂▃▄▅▆▇█"


def ascii_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[str],
    height: int = 10,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Render named series as an aligned ASCII line chart.

    Each series is drawn with its own marker on a shared (optionally
    log-scaled) y-grid; the x axis is labelled with ``x_labels``.
    """
    if not series:
        raise ValueError("at least one series is required")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError(
            "every series must match the x_labels length "
            f"({len(x_labels)}); got lengths {sorted(lengths)}"
        )
    if height < 3:
        raise ValueError(f"height must be >= 3, got {height}")

    def transform(value: float) -> float:
        if log_y:
            if value <= 0.0:
                raise ValueError("log-scale chart needs positive values")
            return math.log10(value)
        return value

    all_values = [
        transform(v) for values in series.values() for v in values
    ]
    lo, hi = min(all_values), max(all_values)
    if hi - lo < 1e-12:
        hi = lo + 1.0

    markers = "ox+*#@"
    columns = len(x_labels)
    width = max(6, max(len(label) for label in x_labels) + 2)
    grid = [[" "] * (columns * width) for _ in range(height)]
    for index, (name, values) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        for column, value in enumerate(values):
            level = (transform(value) - lo) / (hi - lo)
            row = height - 1 - int(round(level * (height - 1)))
            position = column * width + width // 2
            # Overlapping points from different series render as '*'.
            occupied = grid[row][position]
            grid[row][position] = (
                marker if occupied in (" ", marker) else "*"
            )

    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = 10**hi if log_y else hi
    y_bottom = 10**lo if log_y else lo
    for row_index, row in enumerate(grid):
        prefix = "  "
        if row_index == 0:
            prefix = f"{y_top:>7.3g} " if not log_y else f"{y_top:>7.3g} "
            prefix = prefix[:8]
        elif row_index == height - 1:
            prefix = f"{y_bottom:>7.3g} "[:8]
        lines.append(f"{prefix:<8}|" + "".join(row))
    axis = "".join(f"{label:^{width}}" for label in x_labels)
    lines.append(" " * 8 + "+" + "-" * (columns * width))
    lines.append(" " * 9 + axis)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def sweep_chart(
    sweep: SweepResult,
    metric: str,
    metric_label: Optional[str] = None,
    height: int = 10,
) -> str:
    """One figure panel of a sweep as a log-y ASCII chart."""
    series = {
        method: sweep.errors(method, metric)
        for method in sorted(sweep.results)
    }
    labels = [str(total) for total in sweep.n_total_grid()]
    return ascii_chart(
        series,
        labels,
        height=height,
        log_y=True,
        title=(
            f"{sweep.circuit_name}: modeling error for "
            f"{metric_label or metric} (%) vs training samples"
        ),
    )
