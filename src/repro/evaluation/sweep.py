"""Sample-count sweeps — the series behind figures 2(b)-(d) and 3(b)-(d).

For every training budget in a grid, fit each method on the first
``n`` samples per state of a fixed training pool and score it on the fixed
test set. The output is the error-vs-samples series the paper plots: both
methods improve with more samples, and C-BMF sits below S-OMP at every
budget.

Grid points are independent fits on nested slices of the same pool, so
they run through :func:`repro.utils.parallel.parallel_map` — serial by
default, process-parallel with ``max_workers``/``REPRO_MAX_WORKERS``, with
bit-identical results either way (each cell's seed is fixed up front).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.basis.dictionary import BasisDictionary
from repro.evaluation.experiment import MethodResult, ModelingExperiment
from repro.simulate.cost import CostModel
from repro.simulate.dataset import Dataset
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike

__all__ = ["SweepResult", "sample_count_sweep"]


@dataclass
class SweepResult:
    """Error-vs-training-budget series for several methods."""

    circuit_name: str
    metric_names: Tuple[str, ...]
    #: Training samples per state, ascending.
    n_per_state_grid: Tuple[int, ...]
    #: method → list of MethodResult, aligned with the grid.
    results: Dict[str, List[MethodResult]] = field(default_factory=dict)

    def errors(self, method: str, metric: str) -> List[float]:
        """Error series (percent) of one method/metric along the grid."""
        if method not in self.results:
            raise KeyError(
                f"unknown method {method!r}; have {sorted(self.results)}"
            )
        return [point.errors[metric] for point in self.results[method]]

    def n_total_grid(self) -> List[int]:
        """Total training samples (all states) at each grid point."""
        first = next(iter(self.results.values()))
        return [point.n_train_total for point in first]

    def samples_to_reach(self, method: str, metric: str, target: float):
        """Smallest total training budget whose error ≤ ``target``, or None.

        The paper's headline "2× cost reduction" is exactly this quantity:
        compare where C-BMF first reaches S-OMP's final accuracy.
        """
        for point in self.results[method]:
            if point.errors[metric] <= target:
                return point.n_train_total
        return None


def _run_grid_point(n_per_state: int, payload: dict) -> List[MethodResult]:
    """One sweep cell: fit and score every method at one training budget.
    Module-level so it pickles under the spawn start method."""
    train = payload["pool"].head(n_per_state)
    experiment = ModelingExperiment(
        train, payload["test"], payload["basis"], payload["cost_model"]
    )
    return [
        experiment.run(
            method, metrics=payload["metrics"], seed=payload["seed"]
        )
        for method in payload["methods"]
    ]


def sample_count_sweep(
    pool: Dataset,
    test: Dataset,
    basis: BasisDictionary,
    methods: Sequence[str],
    n_per_state_grid: Sequence[int],
    cost_model: Optional[CostModel] = None,
    seed: SeedLike = None,
    metrics: Optional[Sequence[str]] = None,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """Run the error-vs-samples sweep.

    Parameters
    ----------
    pool:
        Training pool; each grid point uses its first ``n`` samples per
        state, so budgets are nested exactly as when a designer keeps
        simulating more points.
    test:
        Fixed held-out set (50/state in the paper).
    methods:
        Registry names, e.g. ``("somp", "cbmf")``.
    n_per_state_grid:
        Ascending per-state training budgets.
    max_workers:
        Processes for the grid (``None`` → ``REPRO_MAX_WORKERS`` → serial).
        Results are identical for any worker count.
    """
    grid = sorted(set(int(n) for n in n_per_state_grid))
    if not grid:
        raise ValueError("n_per_state_grid must be non-empty")
    max_available = min(pool.n_samples_per_state)
    if grid[-1] > max_available:
        raise ValueError(
            f"grid asks for {grid[-1]} samples/state, pool has "
            f"{max_available}"
        )
    if not methods:
        raise ValueError("at least one method is required")
    import numpy as np

    from repro.utils.parallel import resolve_workers

    if (
        isinstance(seed, np.random.Generator)
        and resolve_workers(max_workers, n_items=len(grid)) > 1
    ):
        raise ValueError(
            "a shared Generator seed cannot run multi-process (its state "
            "would be copied, not advanced, per cell) — pass an int/None "
            "seed or max_workers=1"
        )

    sweep = SweepResult(
        circuit_name=pool.circuit_name,
        metric_names=pool.metric_names,
        n_per_state_grid=tuple(grid),
    )
    for method in methods:
        sweep.results[method] = []
    payload = {
        "pool": pool,
        "test": test,
        "basis": basis,
        "cost_model": cost_model,
        "methods": tuple(methods),
        "metrics": metrics,
        "seed": seed,
    }
    per_point = parallel_map(
        _run_grid_point, grid, shared=payload, max_workers=max_workers
    )
    for point_results in per_point:
        for method, run in zip(methods, point_results):
            sweep.results[method].append(run)
    return sweep
