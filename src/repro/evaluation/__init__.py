"""Evaluation harness: the paper's error metric, experiments and sweeps."""

from repro.evaluation.error import modeling_error_percent, rmse
from repro.evaluation.experiment import MethodResult, ModelingExperiment
from repro.evaluation.methods import available_methods, make_estimator
from repro.evaluation.plotting import ascii_chart, sweep_chart
from repro.evaluation.repetition import RepeatedResult, repeat_experiment
from repro.evaluation.report import format_sweep_table, format_comparison_table
from repro.evaluation.sweep import SweepResult, sample_count_sweep

__all__ = [
    "modeling_error_percent",
    "rmse",
    "MethodResult",
    "ModelingExperiment",
    "available_methods",
    "make_estimator",
    "ascii_chart",
    "sweep_chart",
    "RepeatedResult",
    "repeat_experiment",
    "format_sweep_table",
    "format_comparison_table",
    "SweepResult",
    "sample_count_sweep",
]
