"""Estimator registry used by experiments, sweeps and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.baselines import (
    GroupLasso,
    LeastSquares,
    OMP,
    Ridge,
    SOMP,
    UncorrelatedBMF,
)
from repro.core import CBMF, ClusteredCBMF, MultiStateRegressor
from repro.utils.rng import SeedLike

__all__ = [
    "available_acquisitions",
    "available_methods",
    "make_acquisition",
    "make_estimator",
]

_FACTORIES: Dict[str, Callable[[SeedLike], MultiStateRegressor]] = {
    "ls": lambda seed: LeastSquares(),
    "ridge": lambda seed: Ridge(alpha=1.0),
    "omp": lambda seed: OMP(seed=seed),
    "somp": lambda seed: SOMP(seed=seed),
    "group_lasso": lambda seed: GroupLasso(seed=seed),
    "bmf": lambda seed: UncorrelatedBMF(seed=seed),
    "cbmf": lambda seed: CBMF(seed=seed),
    "clustered_cbmf": lambda seed: ClusteredCBMF(seed=seed),
}


def available_methods() -> Tuple[str, ...]:
    """Registered method names."""
    return tuple(sorted(_FACTORIES))


def make_estimator(name: str, seed: SeedLike = None) -> MultiStateRegressor:
    """Instantiate a registered estimator with default configuration."""
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown method {name!r}; available: {available_methods()}"
        )
    return _FACTORIES[name](seed)


def _acquisition_factories() -> Dict[str, Callable[..., object]]:
    # Imported lazily: repro.active imports this module for strategy
    # resolution, so a top-level import would be circular.
    from repro.active.acquisition import (
        CorrelationAwareAllocation,
        CostWeightedVariance,
        RandomAcquisition,
        VarianceAcquisition,
        YieldVarianceAcquisition,
    )

    return {
        "random": RandomAcquisition,
        "variance": VarianceAcquisition,
        "cost_weighted": CostWeightedVariance,
        "correlation": CorrelationAwareAllocation,
        "yield_variance": YieldVarianceAcquisition,
    }


def available_acquisitions() -> Tuple[str, ...]:
    """Registered acquisition-strategy names (active-learning loop)."""
    return tuple(sorted(_acquisition_factories()))


def make_acquisition(name: str, **kwargs):
    """Instantiate a registered acquisition strategy by name.

    Keyword arguments are forwarded to the strategy constructor
    (``explore_fraction`` for the variance family, ``state_costs`` —
    required — for ``cost_weighted``).
    """
    factories = _acquisition_factories()
    if name not in factories:
        raise KeyError(
            f"unknown acquisition {name!r}; "
            f"available: {tuple(sorted(factories))}"
        )
    return factories[name](**kwargs)
