"""Estimator registry used by experiments, sweeps and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.baselines import (
    GroupLasso,
    LeastSquares,
    OMP,
    Ridge,
    SOMP,
    UncorrelatedBMF,
)
from repro.core import CBMF, ClusteredCBMF, MultiStateRegressor
from repro.utils.rng import SeedLike

__all__ = ["available_methods", "make_estimator"]

_FACTORIES: Dict[str, Callable[[SeedLike], MultiStateRegressor]] = {
    "ls": lambda seed: LeastSquares(),
    "ridge": lambda seed: Ridge(alpha=1.0),
    "omp": lambda seed: OMP(seed=seed),
    "somp": lambda seed: SOMP(seed=seed),
    "group_lasso": lambda seed: GroupLasso(seed=seed),
    "bmf": lambda seed: UncorrelatedBMF(seed=seed),
    "cbmf": lambda seed: CBMF(seed=seed),
    "clustered_cbmf": lambda seed: ClusteredCBMF(seed=seed),
}


def available_methods() -> Tuple[str, ...]:
    """Registered method names."""
    return tuple(sorted(_FACTORIES))


def make_estimator(name: str, seed: SeedLike = None) -> MultiStateRegressor:
    """Instantiate a registered estimator with default configuration."""
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown method {name!r}; available: {available_methods()}"
        )
    return _FACTORIES[name](seed)
