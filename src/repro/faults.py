"""Deterministic fault injection for chaos-testing the fit/serve paths.

A :class:`FaultPlan` is a seeded, call-indexed schedule of failures:
"make the oracle raise on its 3rd call", "poison one row with NaN every
2nd call", "stall the 5th call for 50 ms", "fail the next hot swap".
Sites consult the plan with :meth:`FaultPlan.fire`; the plan counts the
calls per site, so a given configuration always injects the *same*
faults in the same places — which is what lets chaos tests assert exact
degradation outcomes (bit-identical recovery, precise quarantine
counts) rather than statistical ones.

Wiring points:

* :class:`FaultyOracle` wraps any :class:`~repro.active.oracle.Oracle`
  and applies the plan's ``"oracle"`` site to ``observe`` calls (holdout
  ``truth`` calls are never faulted — scoring stays clean).
* :class:`~repro.serving.service.ModelService` accepts a plan and fires
  its ``"swap"`` site inside ``load``/``swap``, exercising the
  fall-back-to-previous-version path.
* ``repro.utils.parallel`` honours the ``REPRO_FAULT_WORKER_CRASH``
  token file (see :func:`worker_crash_flag`) to kill exactly one pool
  worker mid-task, exercising inline re-run recovery.
* :class:`~repro.streaming.service.StreamingService` applies the
  ``"stream"`` site to each ingested batch via
  :func:`apply_stream_fault` — poisoned batches must be quarantined
  while the served model keeps answering.
* :class:`~repro.cluster.gateway.ClusterService` consumes the
  ``"shard"`` site through :func:`shard_faults`: ``shard:kill@i``
  hard-exits shard process ``i`` (the gateway must fail its in-flight
  requests and respawn it) and ``shard:hang@i`` makes it stop reading
  its pipe (every routed request must expire on its deadline).
* :class:`~repro.cluster.net.ClusterListener` fires the ``"net"`` site
  once per client frame: ``net:drop@i`` closes the connection without
  answering the ``i``-th frame (clients must surface a connection
  error, the gateway must keep serving everyone else) and
  ``net:slow@i`` sleeps before answering it (deadline budgets must
  absorb the delay).

The CLI accepts ``--fault-plan "oracle:raise@2,5;swap:raise@0"`` (see
:meth:`FaultPlan.parse`) so end-to-end chaos runs need no code.
"""

from __future__ import annotations

import os
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.active.oracle import Oracle
from repro.errors import ServingError, SimulationError

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultyOracle",
    "apply_stream_fault",
    "raise_serving_fault",
    "shard_faults",
    "worker_crash_flag",
]

_MODES = ("raise", "nan", "stall", "kill", "hang", "drop", "slow")

#: Modes that only make sense at the ``"shard"`` site (process-level).
_SHARD_MODES = ("kill", "hang")

#: Modes that only make sense at the ``"net"`` site (listener frames).
_NET_MODES = ("drop", "slow")

#: Environment variable naming the one-shot worker-crash token file.
WORKER_CRASH_ENV = "REPRO_FAULT_WORKER_CRASH"


@dataclass(frozen=True)
class Fault:
    """One scheduled failure at a named site.

    Parameters
    ----------
    site:
        Where the fault fires — ``"oracle"`` (observe calls) and
        ``"swap"`` (service hot swaps) are the built-in sites; any
        string works for custom integration points.
    mode:
        ``"raise"`` (throw :class:`SimulationError`/:class:`ServingError`),
        ``"nan"`` (poison one seeded row of the returned values),
        ``"stall"`` (sleep ``stall_seconds`` before answering), or the
        process-level ``"kill"`` / ``"hang"`` modes of the ``"shard"``
        site (hard-exit / stop reading; the *index* names a shard, not
        a call).
    calls:
        0-based call indices at which the fault fires (shard indices
        for the ``"shard"`` site).
    every:
        Alternative to ``calls``: fire whenever ``index % every == 0``.
    stall_seconds:
        Sleep length for ``"stall"`` mode.
    """

    site: str
    mode: str
    calls: Tuple[int, ...] = ()
    every: Optional[int] = None
    stall_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.mode in _SHARD_MODES and self.site != "shard":
            raise ValueError(
                f"mode {self.mode!r} is shard-only (site 'shard'), "
                f"got site {self.site!r}"
            )
        if self.mode in _NET_MODES and self.site != "net":
            raise ValueError(
                f"mode {self.mode!r} is network-only (site 'net'), "
                f"got site {self.site!r}"
            )
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.stall_seconds < 0:
            raise ValueError(
                f"stall_seconds must be >= 0, got {self.stall_seconds}"
            )

    def matches(self, index: int) -> bool:
        """Whether the fault fires on the ``index``-th call of its site."""
        if self.every is not None:
            return index % self.every == 0
        return index in self.calls


class FaultPlan:
    """A seeded, call-counted schedule of :class:`Fault` injections.

    The plan keeps one call counter per site; :meth:`fire` increments it
    and returns the first matching fault (or ``None``). ``seed`` drives
    the deterministic choice of *which* row a ``"nan"`` fault poisons.
    """

    def __init__(self, faults: Sequence[Fault] = (), seed: int = 0) -> None:
        self.faults: Tuple[Fault, ...] = tuple(faults)
        self.seed = int(seed)
        self._counts: Dict[str, int] = defaultdict(int)

    def fire(self, site: str) -> Optional[Fault]:
        """Count one call at ``site``; return the fault due, if any."""
        index = self._counts[site]
        self._counts[site] = index + 1
        for fault in self.faults:
            if fault.site == site and fault.matches(index):
                return fault
        return None

    def calls(self, site: str) -> int:
        """How many calls ``site`` has made so far."""
        return self._counts[site]

    def reset(self) -> None:
        """Zero every site's call counter (reuse the plan for a new run)."""
        self._counts.clear()

    def nan_rng(self, site: str) -> np.random.Generator:
        """Deterministic generator for the current call's NaN row choice."""
        return np.random.default_rng(
            (self.seed, hash(site) & 0xFFFF, self._counts[site])
        )

    # -- CLI round-trip --------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a compact spec string.

        Grammar: ``site:mode@indices`` joined with ``;`` — indices are
        comma-separated 0-based call numbers, or ``*N`` for "every N
        calls". A ``stall`` entry may append ``:seconds``.

            oracle:raise@2,5        raise on oracle calls 2 and 5
            oracle:nan@*2           poison a row on every 2nd call
            swap:raise@0            fail the first hot swap
            oracle:stall@1:0.2      sleep 200 ms on call 1
            shard:kill@1            hard-kill cluster shard process 1
            shard:hang@0            make shard 0 stop reading its pipe
            net:drop@2              listener drops the 3rd client frame's
                                    connection without answering
            net:slow@*2:0.1         listener sleeps 100 ms before
                                    answering every 2nd frame
        """
        faults = []
        for chunk in filter(None, (c.strip() for c in spec.split(";"))):
            try:
                head, _, schedule = chunk.partition("@")
                site, _, mode = head.partition(":")
                if not (site and mode and schedule):
                    raise ValueError("expected site:mode@indices")
                stall = 0.05
                if mode in ("stall", "slow") and ":" in schedule:
                    schedule, _, stall_text = schedule.rpartition(":")
                    stall = float(stall_text)
                if schedule.startswith("*"):
                    fault = Fault(
                        site, mode, every=int(schedule[1:]),
                        stall_seconds=stall,
                    )
                else:
                    fault = Fault(
                        site, mode,
                        calls=tuple(
                            int(i) for i in schedule.split(",") if i
                        ),
                        stall_seconds=stall,
                    )
            except ValueError as error:
                raise ValueError(
                    f"invalid fault spec {chunk!r}: {error}"
                ) from error
            faults.append(fault)
        return cls(faults, seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({list(self.faults)}, seed={self.seed})"


class FaultyOracle(Oracle):
    """Wrap an oracle so a :class:`FaultPlan` governs its failures.

    Only ``observe`` consults the plan (site ``"oracle"``); ``truth`` —
    used for holdout scoring only — always delegates cleanly, so fault
    injection perturbs the training data path, never the evaluation.
    """

    def __init__(
        self, base: Oracle, plan: FaultPlan, site: str = "oracle"
    ) -> None:
        self.base = base
        self.plan = plan
        self.site = site
        self.name = base.name
        self.metric = base.metric
        self.n_states = base.n_states
        self.n_variables = base.n_variables

    def observe(self, x: np.ndarray, state: int) -> np.ndarray:
        """Observe through the base oracle, applying any due fault."""
        fault = self.plan.fire(self.site)
        if fault is None:
            return self.base.observe(x, state)
        if fault.mode == "raise":
            raise SimulationError(
                f"injected fault at {self.site} call "
                f"{self.plan.calls(self.site) - 1} (state {state})"
            )
        if fault.mode == "stall":
            time.sleep(fault.stall_seconds)
            return self.base.observe(x, state)
        # "nan": poison one deterministically-chosen row.
        values = np.array(self.base.observe(x, state), dtype=float)
        if values.size:
            row = int(self.plan.nan_rng(self.site).integers(values.size))
            values[row] = np.nan
        return values

    def truth(self, x: np.ndarray, state: int) -> np.ndarray:
        """Clean pass-through for holdout scoring."""
        return self.base.truth(x, state)


def raise_serving_fault(
    plan: Optional[FaultPlan], site: str = "swap"
) -> None:
    """Fire ``site`` on ``plan`` and raise/stall accordingly (serving).

    Helper for serving integration points: ``None`` plans are a no-op,
    ``"nan"`` faults are meaningless for control flow and ignored.
    """
    if plan is None:
        return
    fault = plan.fire(site)
    if fault is None:
        return
    if fault.mode == "stall":
        time.sleep(fault.stall_seconds)
        return
    if fault.mode == "raise":
        raise ServingError(
            f"injected fault at {site} call {plan.calls(site) - 1}"
        )


def apply_stream_fault(
    plan: Optional[FaultPlan],
    values: np.ndarray,
    site: str = "stream",
) -> np.ndarray:
    """Fire ``site`` on ``plan`` against one ingested batch's values.

    The streaming-ingest integration point: call once per batch with the
    observed target vector. ``None`` plans pass the values through
    untouched. A ``"raise"`` fault throws :class:`SimulationError` (the
    service quarantines the batch); a ``"nan"`` fault returns a copy
    with one deterministically-chosen row poisoned (the service's
    finite-check quarantines it); ``"stall"`` sleeps then passes
    through.
    """
    if plan is None:
        return values
    fault = plan.fire(site)
    if fault is None:
        return values
    if fault.mode == "raise":
        raise SimulationError(
            f"injected fault at {site} call {plan.calls(site) - 1}"
        )
    if fault.mode == "stall":
        time.sleep(fault.stall_seconds)
        return values
    poisoned = np.array(values, dtype=float)
    if poisoned.size:
        row = int(plan.nan_rng(site).integers(poisoned.size))
        poisoned[row] = np.nan
    return poisoned


def shard_faults(plan: Optional[FaultPlan]) -> Dict[int, str]:
    """Extract the shard-process faults of a plan: ``{index: mode}``.

    ``shard:kill@i`` / ``shard:hang@i`` specs name *shard indices*
    rather than call counts, so the cluster gateway reads them out once
    at injection time instead of firing the site per call. ``every``
    schedules are resolved against the explicit ``calls`` only — a
    shard fleet has a fixed size, so "every Nth shard" must be spelled
    out as indices. A shard named by both a kill and a hang keeps the
    first spec in plan order. ``None`` plans yield no faults.
    """
    if plan is None:
        return {}
    out: Dict[int, str] = {}
    for fault in plan.faults:
        if fault.site != "shard" or fault.mode not in _SHARD_MODES:
            continue
        for index in fault.calls:
            out.setdefault(int(index), fault.mode)
    return out


class worker_crash_flag:
    """Context manager arming a one-shot pool-worker crash.

    Creates a token file and exports its path via the
    ``REPRO_FAULT_WORKER_CRASH`` environment variable (inherited by
    spawn workers). The first worker task to consume the token calls
    ``os._exit(1)`` mid-task — a hard crash the pool must recover from.
    Exactly one task dies per armed flag.
    """

    def __init__(self, directory) -> None:
        self.path = os.path.join(str(directory), "crash-token")
        self._previous: Optional[str] = None

    def __enter__(self) -> "worker_crash_flag":
        with open(self.path, "w") as handle:
            handle.write("armed\n")
        self._previous = os.environ.get(WORKER_CRASH_ENV)
        os.environ[WORKER_CRASH_ENV] = self.path
        return self

    def __exit__(self, *exc_info) -> None:
        if self._previous is None:
            os.environ.pop(WORKER_CRASH_ENV, None)
        else:
            os.environ[WORKER_CRASH_ENV] = self._previous
        try:
            os.remove(self.path)
        except OSError:
            pass

    @property
    def consumed(self) -> bool:
        """Whether a worker has taken the token (and died)."""
        return not os.path.exists(self.path)
