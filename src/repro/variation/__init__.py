"""Synthetic process-variation substrate.

Replaces the paper's proprietary 32nm SOI CMOS statistical models with a
transparent equivalent: a set of *inter-die* (global) variables shared by all
devices plus *local mismatch* variables per device whose magnitudes follow
the Pelgrom model. Every variable is carried in normalized N(0,1) form in a
flat vector ``x`` — exactly the modeling space the paper's estimators see.
"""

from repro.variation.mismatch import PelgromCoefficients, mismatch_sigma
from repro.variation.parameters import (
    GLOBAL_PARAMETER_SET,
    ParameterSpec,
    VariationKind,
)
from repro.variation.process import (
    DeviceVariation,
    ProcessModel,
    ProcessSample,
)
from repro.variation.sampling import (
    latin_hypercube,
    standard_normal_samples,
)

__all__ = [
    "PelgromCoefficients",
    "mismatch_sigma",
    "ParameterSpec",
    "VariationKind",
    "GLOBAL_PARAMETER_SET",
    "DeviceVariation",
    "ProcessModel",
    "ProcessSample",
    "latin_hypercube",
    "standard_normal_samples",
]
