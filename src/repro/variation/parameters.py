"""Typed declarations of device-level variation parameters.

A *variation kind* names a physical quantity that varies (threshold voltage,
mobility, sheet resistance, ...). A ``ParameterSpec`` attaches a standard
deviation to a kind for one device (local mismatch) or for the whole die
(inter-die). All deviations are either absolute (e.g. ΔVTH in volts) or
relative (dimensionless multipliers around 1.0), recorded in ``unit``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

__all__ = ["VariationKind", "ParameterSpec", "GLOBAL_PARAMETER_SET"]


class VariationKind(str, enum.Enum):
    """Physical quantity affected by process variation."""

    #: MOSFET threshold-voltage shift, volts.
    VTH = "vth"
    #: Relative carrier-mobility / current-factor deviation (β = μCox·W/L).
    BETA = "beta"
    #: Relative gate-length deviation.
    LENGTH = "length"
    #: Relative gate-oxide-thickness deviation.
    TOX = "tox"
    #: Relative gate-overlap/fringe capacitance deviation.
    CGS = "cgs"
    #: Relative drain-overlap capacitance deviation.
    CGD = "cgd"
    #: Relative source/drain series-resistance deviation.
    RDS = "rds"
    #: Relative poly/diffusion sheet-resistance deviation (resistors).
    RSHEET = "rsheet"
    #: Relative MIM/MOM capacitor density deviation.
    CDENS = "cdens"
    #: Relative inductor/interconnect inductance deviation.
    LIND = "lind"
    #: Relative interconnect RC deviation.
    RCWIRE = "rcwire"
    #: Relative substrate-network conductance deviation.
    GSUB = "gsub"

    def is_relative(self) -> bool:
        """True for dimensionless multiplicative deviations."""
        return self is not VariationKind.VTH


@dataclass(frozen=True)
class ParameterSpec:
    """One variation parameter: a kind plus its 1-sigma magnitude.

    Attributes
    ----------
    kind:
        The physical quantity that varies.
    sigma:
        Standard deviation of the deviation. Volts for ``VTH``; a
        dimensionless fraction for relative kinds.
    """

    kind: VariationKind
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise ValueError(
                f"sigma must be >= 0, got {self.sigma} for {self.kind}"
            )

    @property
    def unit(self) -> str:
        """Unit string of the deviation ('V' or 'rel')."""
        return "V" if self.kind is VariationKind.VTH else "rel"


#: Default inter-die variable set for the synthetic 32nm-class process.
#: Magnitudes follow the usual advanced-node ballpark: tens of millivolts of
#: global VTH shift, a few percent on geometry/films, 5-10% on passives.
GLOBAL_PARAMETER_SET: Tuple[ParameterSpec, ...] = (
    ParameterSpec(VariationKind.VTH, 0.020),
    ParameterSpec(VariationKind.BETA, 0.04),
    ParameterSpec(VariationKind.LENGTH, 0.02),
    ParameterSpec(VariationKind.TOX, 0.015),
    ParameterSpec(VariationKind.CGS, 0.03),
    ParameterSpec(VariationKind.CGD, 0.03),
    ParameterSpec(VariationKind.RDS, 0.05),
    ParameterSpec(VariationKind.RSHEET, 0.08),
    ParameterSpec(VariationKind.CDENS, 0.05),
    ParameterSpec(VariationKind.LIND, 0.02),
    ParameterSpec(VariationKind.RCWIRE, 0.06),
    ParameterSpec(VariationKind.GSUB, 0.10),
)
