"""Samplers for the normalized variation space.

Two samplers are provided: plain Monte Carlo (i.i.d. standard normal, what
the paper's transistor-level MC uses) and a Latin-hypercube variant useful
for space-filling training sets in the examples.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer

__all__ = ["standard_normal_samples", "latin_hypercube"]


def standard_normal_samples(
    n_samples: int, n_variables: int, seed: SeedLike = None
) -> np.ndarray:
    """Draw an ``n_samples × n_variables`` i.i.d. N(0,1) matrix."""
    n_samples = check_integer(n_samples, "n_samples", minimum=1)
    n_variables = check_integer(n_variables, "n_variables", minimum=1)
    rng = as_generator(seed)
    return rng.standard_normal((n_samples, n_variables))


def latin_hypercube(
    n_samples: int, n_variables: int, seed: SeedLike = None
) -> np.ndarray:
    """Latin-hypercube sample mapped through the normal inverse CDF.

    Each variable's marginal is exactly stratified into ``n_samples`` equal
    probability bins, then shuffled independently per column — better
    space-filling than plain MC at small sample counts.
    """
    n_samples = check_integer(n_samples, "n_samples", minimum=1)
    n_variables = check_integer(n_variables, "n_variables", minimum=1)
    rng = as_generator(seed)
    # Stratified uniforms per column, independently permuted.
    grid = (
        np.tile(np.arange(n_samples), (n_variables, 1)).T
        + rng.uniform(size=(n_samples, n_variables))
    ) / n_samples
    for column in range(n_variables):
        rng.shuffle(grid[:, column])
    # Clip away exact 0/1 before the inverse CDF.
    grid = np.clip(grid, 1e-12, 1.0 - 1e-12)
    return stats.norm.ppf(grid)
