"""Pelgrom-model local-mismatch magnitudes.

Local (within-die) mismatch of MOS parameters scales inversely with the
square root of gate area: ``σ(ΔP) = A_P / sqrt(W·L)`` (Pelgrom et al.,
JSSC 1989). The coefficients below are representative of a 32nm-class
process; they set *relative* importance between small bias devices and large
RF devices, which is what shapes the sparsity pattern the estimators exploit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.variation.parameters import ParameterSpec, VariationKind

__all__ = ["PelgromCoefficients", "mismatch_sigma", "mosfet_mismatch_specs"]


@dataclass(frozen=True)
class PelgromCoefficients:
    """Area-scaling coefficients ``A_P`` (units: quantity · µm).

    ``sigma = A_P / sqrt(area_um2)`` with ``area_um2 = W·L`` in µm².
    """

    #: Threshold voltage, V·µm. ~1.5-3 mV·µm at 32nm.
    a_vth: float = 2.5e-3
    #: Relative current factor β, fraction·µm.
    a_beta: float = 0.010
    #: Relative gate length, fraction·µm.
    a_length: float = 0.008
    #: Relative overlap capacitances, fraction·µm.
    a_cap: float = 0.012
    #: Relative series resistance, fraction·µm.
    a_rds: float = 0.020

    def __post_init__(self) -> None:
        for name in ("a_vth", "a_beta", "a_length", "a_cap", "a_rds"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be > 0")


#: Default coefficients for the synthetic process.
DEFAULT_COEFFICIENTS = PelgromCoefficients()


def mismatch_sigma(coefficient: float, width_um: float, length_um: float) -> float:
    """One Pelgrom sigma: ``A_P / sqrt(W·L)`` for geometry in µm."""
    if width_um <= 0.0 or length_um <= 0.0:
        raise ValueError(
            f"device geometry must be positive, got W={width_um} L={length_um}"
        )
    return coefficient / math.sqrt(width_um * length_um)


def mosfet_mismatch_specs(
    width_um: float,
    length_um: float,
    coefficients: PelgromCoefficients = DEFAULT_COEFFICIENTS,
) -> tuple:
    """Local-mismatch parameter set of one MOSFET.

    Returns the tuple of ``ParameterSpec`` covering the four mismatch
    channels carried per transistor: ΔVTH, Δβ, ΔL and ΔRds. Capacitance
    mismatch is folded into the CGS/CGD kinds.
    """
    area = (width_um, length_um)
    return (
        ParameterSpec(
            VariationKind.VTH, mismatch_sigma(coefficients.a_vth, *area)
        ),
        ParameterSpec(
            VariationKind.BETA, mismatch_sigma(coefficients.a_beta, *area)
        ),
        ParameterSpec(
            VariationKind.LENGTH, mismatch_sigma(coefficients.a_length, *area)
        ),
        ParameterSpec(
            VariationKind.CGS, mismatch_sigma(coefficients.a_cap, *area)
        ),
        ParameterSpec(
            VariationKind.CGD, mismatch_sigma(coefficients.a_cap, *area)
        ),
        ParameterSpec(
            VariationKind.RDS, mismatch_sigma(coefficients.a_rds, *area)
        ),
    )
