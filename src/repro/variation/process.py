"""The process model: global inter-die variables plus per-device mismatch.

``ProcessModel`` owns the full list of normalized variation variables of a
circuit and defines the flat vector ``x`` the performance models are fitted
against. Variable ordering is deterministic:

1. the inter-die (global) parameters, in declaration order;
2. for each device in declaration order, its local-mismatch parameters.

``realize(x)`` turns one normalized sample into physical deviations. For a
device ``d`` and kind ``p`` the total deviation is::

    Δp(d) = σ_global(p) · x_global(p) + σ_local(d, p) · x_local(d, p)

i.e. all devices ride the same die-level shift and add their own mismatch —
the standard decomposition used by foundry statistical models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_matrix, check_vector
from repro.variation.parameters import (
    GLOBAL_PARAMETER_SET,
    ParameterSpec,
    VariationKind,
)

__all__ = ["DeviceVariation", "ProcessModel", "ProcessSample"]


@dataclass(frozen=True)
class DeviceVariation:
    """Local-mismatch declaration of a single device instance.

    Attributes
    ----------
    device:
        Unique instance name (e.g. ``"M1"``, ``"RL_left"``).
    specs:
        The mismatch parameters this device carries.
    """

    device: str
    specs: Tuple[ParameterSpec, ...]

    def __post_init__(self) -> None:
        if not self.device:
            raise ValueError("device name must be non-empty")
        kinds = [spec.kind for spec in self.specs]
        if len(kinds) != len(set(kinds)):
            raise ValueError(
                f"device {self.device!r} declares a duplicate variation kind"
            )


class ProcessModel:
    """Full variation space of one circuit.

    Parameters
    ----------
    devices:
        Per-device mismatch declarations; order fixes the ``x`` layout.
    global_specs:
        Inter-die parameters shared by every device. Defaults to the
        synthetic 32nm-class set.
    """

    def __init__(
        self,
        devices: Sequence[DeviceVariation],
        global_specs: Sequence[ParameterSpec] = GLOBAL_PARAMETER_SET,
    ) -> None:
        self._globals: Tuple[ParameterSpec, ...] = tuple(global_specs)
        self._devices: Tuple[DeviceVariation, ...] = tuple(devices)

        names = [dev.device for dev in self._devices]
        if len(names) != len(set(names)):
            raise ValueError("device names must be unique")
        global_kinds = [spec.kind for spec in self._globals]
        if len(global_kinds) != len(set(global_kinds)):
            raise ValueError("global parameter kinds must be unique")

        self._global_index: Dict[VariationKind, int] = {
            spec.kind: i for i, spec in enumerate(self._globals)
        }
        self._local_index: Dict[Tuple[str, VariationKind], int] = {}
        self._local_sigma: Dict[Tuple[str, VariationKind], float] = {}
        self._names: List[str] = [
            f"global.{spec.kind.value}" for spec in self._globals
        ]
        offset = len(self._globals)
        for dev in self._devices:
            for spec in dev.specs:
                self._local_index[(dev.device, spec.kind)] = offset
                self._local_sigma[(dev.device, spec.kind)] = spec.sigma
                self._names.append(f"{dev.device}.{spec.kind.value}")
                offset += 1
        self._n_variables = offset

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        """Total number of normalized N(0,1) variables."""
        return self._n_variables

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Flat variable names, in ``x`` order."""
        return tuple(self._names)

    @property
    def devices(self) -> Tuple[DeviceVariation, ...]:
        """Per-device declarations, in ``x`` order."""
        return self._devices

    @property
    def global_specs(self) -> Tuple[ParameterSpec, ...]:
        """Inter-die parameters, in ``x`` order."""
        return self._globals

    def global_variable_index(self, kind: VariationKind) -> Optional[int]:
        """Index of the global variable of ``kind``, or None if absent."""
        return self._global_index.get(kind)

    def local_variable_index(
        self, device: str, kind: VariationKind
    ) -> Optional[int]:
        """Index of a device's local variable of ``kind``, or None."""
        return self._local_index.get((device, kind))

    def local_sigma(self, device: str, kind: VariationKind) -> float:
        """Mismatch sigma for ``(device, kind)``; KeyError if undeclared."""
        return self._local_sigma[(device, kind)]

    # ------------------------------------------------------------------
    # realization
    # ------------------------------------------------------------------
    def realize(self, x: np.ndarray) -> "ProcessSample":
        """Bind one normalized sample vector to this model."""
        x = check_vector(x, "x", length=self._n_variables)
        return ProcessSample(self, x)

    def realize_batch(self, samples: np.ndarray) -> List["ProcessSample"]:
        """Bind a batch of samples (rows) to this model."""
        samples = check_matrix(samples, "samples", shape=(None, self._n_variables))
        return [ProcessSample(self, row) for row in samples]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessModel(n_variables={self._n_variables}, "
            f"n_devices={len(self._devices)}, "
            f"n_globals={len(self._globals)})"
        )


class ProcessSample:
    """One realized process sample: physical deviations per device/kind."""

    def __init__(self, model: ProcessModel, x: np.ndarray) -> None:
        self._model = model
        self._x = np.asarray(x, dtype=float)

    @property
    def x(self) -> np.ndarray:
        """The normalized variable vector (read-only view)."""
        view = self._x.view()
        view.flags.writeable = False
        return view

    @property
    def model(self) -> ProcessModel:
        """The owning process model."""
        return self._model

    def deviation(self, device: str, kind: VariationKind) -> float:
        """Total physical deviation of ``kind`` for ``device``.

        Combines the die-level shift (if a global of this kind exists) and
        the device's own mismatch (if declared). A device with no local
        declaration of this kind still sees the global shift.
        """
        total = 0.0
        gi = self._model.global_variable_index(kind)
        if gi is not None:
            total += self._model.global_specs[gi].sigma * self._x[gi]
        li = self._model.local_variable_index(device, kind)
        if li is not None:
            total += self._model.local_sigma(device, kind) * self._x[li]
        return total

    def relative(self, device: str, kind: VariationKind) -> float:
        """Multiplicative factor ``1 + Δ`` for a relative kind.

        The factor is clipped to a minimum of 0.05 so extreme tail samples
        cannot produce non-physical negative resistances/capacitances.
        """
        if not kind.is_relative():
            raise ValueError(f"{kind} is an absolute kind; use deviation()")
        return max(1.0 + self.deviation(device, kind), 0.05)
