"""repro — Correlated Bayesian Model Fusion (C-BMF), DAC 2016 reproduction.

Performance modeling of large-scale *tunable* analog/RF circuits: fit, from
a few simulation samples, one linear-in-the-basis model per knob state while
fusing both the sparse model template and the coefficient magnitudes across
states through a unified Gaussian prior.

Quick start::

    from repro import CBMF, LinearBasis, TunableLNA, MonteCarloEngine

    lna = TunableLNA(n_states=8, n_variables=None)
    data = MonteCarloEngine(lna, seed=0).run(n_samples_per_state=30)
    train, test = data.split(n_train_per_state=20)

    basis = LinearBasis(lna.n_variables)
    model = CBMF(seed=0).fit(
        basis.expand_states(train.inputs()), train.targets("gain_db")
    )

Subpackages: ``core`` (the C-BMF method), ``baselines`` (S-OMP and friends),
``circuits``/``variation``/``simulate`` (the synthetic silicon substrate),
``basis``, ``evaluation`` (the paper's experiments), ``applications``
(yield / corners / tuning), ``active`` (uncertainty-aware sample
acquisition), ``serving`` (registry + model serving). Failure handling
lives in ``errors`` (the exception taxonomy) and ``faults``
(deterministic fault injection for chaos tests).
"""

from repro.active import (
    ActiveFitConfig,
    ActiveFitLoop,
    CircuitOracle,
    StoppingRule,
)
from repro.baselines import (
    GroupLasso,
    LeastSquares,
    OMP,
    Ridge,
    SOMP,
    UncorrelatedBMF,
)
from repro.basis import CrossTermBasis, LinearBasis, QuadraticBasis
from repro.circuits import TunableLNA, TunableMixer, TunableVCO
from repro.core import CBMF, ClusteredCBMF, CorrelatedPrior, ar1_correlation
from repro.errors import (
    CheckpointError,
    NumericalError,
    ReproError,
    ServingError,
    SimulationError,
)
from repro.evaluation import (
    ModelingExperiment,
    modeling_error_percent,
    sample_count_sweep,
)
from repro.simulate import CostModel, Dataset, MonteCarloEngine

__version__ = "1.0.0"

__all__ = [
    "CBMF",
    "ClusteredCBMF",
    "CorrelatedPrior",
    "ar1_correlation",
    "GroupLasso",
    "LeastSquares",
    "OMP",
    "Ridge",
    "SOMP",
    "UncorrelatedBMF",
    "LinearBasis",
    "QuadraticBasis",
    "CrossTermBasis",
    "TunableLNA",
    "TunableMixer",
    "TunableVCO",
    "ModelingExperiment",
    "modeling_error_percent",
    "sample_count_sweep",
    "CostModel",
    "Dataset",
    "MonteCarloEngine",
    "ActiveFitConfig",
    "ActiveFitLoop",
    "CircuitOracle",
    "StoppingRule",
    "ReproError",
    "SimulationError",
    "NumericalError",
    "CheckpointError",
    "ServingError",
    "__version__",
]
