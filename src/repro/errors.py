"""Structured exception taxonomy for the fit/serve pipeline.

Every long-running path in the repo — ``CBMF.fit`` with process-pool CV,
the budgeted ``ActiveFitLoop``, the micro-batching serving engine — can
fail in ways that deserve different handling: a transient simulator
crash should be retried, a non-finite sample quarantined, a Cholesky
breakdown surfaced as a numerical problem, a half-written checkpoint
detected before it silently corrupts a resumed run. The taxonomy makes
those cases distinguishable at the caller:

``ReproError``
    Root of everything this package raises deliberately.
``SimulationError``
    A simulation endpoint (circuit evaluation, oracle observation)
    failed or kept returning non-finite values past its retry budget.
``NumericalError``
    Dense linear algebra broke down (e.g. a matrix stayed indefinite
    through the whole jitter ladder, or an uncertainty estimate came
    back non-finite). Also subclasses ``numpy.linalg.LinAlgError`` so
    existing ``except np.linalg.LinAlgError`` handlers keep working.
``CheckpointError``
    A checkpoint failed to write or load cleanly — the message names
    the offending file so operators know what to delete or restore.
``ServingError``
    The serving layer failed an operation (e.g. a hot swap) in a way it
    degraded around rather than crashed on. The cluster gateway refines
    it into :class:`ShedError` (admission control turned the request
    away), :class:`DeadlineError` (the per-request deadline expired
    before an answer arrived) and :class:`ShardCrashError` (the shard
    process serving the request died mid-flight) — all still
    ``ServingError`` so existing handlers keep working.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "CheckpointError",
    "DeadlineError",
    "NumericalError",
    "ReproError",
    "ServingError",
    "ShardCrashError",
    "ShedError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class of every deliberate failure this package raises."""


class SimulationError(ReproError):
    """A simulation call failed or returned non-finite values.

    Raised after the retry budget is exhausted; the message names the
    state/row when the caller knows them.
    """


class NumericalError(ReproError, np.linalg.LinAlgError):
    """Dense linear algebra broke down despite stabilization.

    Subclasses ``np.linalg.LinAlgError`` so pre-existing handlers that
    catch the numpy exception continue to work unchanged.
    """


class CheckpointError(ReproError):
    """A checkpoint is missing, unreadable, or internally inconsistent.

    Parameters
    ----------
    message:
        Human-readable description; should name the offending file.
    path:
        Optional path of the corrupt or missing file, kept as an
        attribute for programmatic handling.
    """

    def __init__(self, message: str, path: Optional[str] = None) -> None:
        super().__init__(message)
        self.path = str(path) if path is not None else None


class ServingError(ReproError):
    """A serving operation failed (the service degrades, not crashes)."""


class ShedError(ServingError):
    """Admission control rejected a request (shard queue too deep).

    A shed is an explicit, structured refusal — never a silent drop:
    the caller knows immediately that the request was not (and will not
    be) processed, and the gateway counts it per shard and per version.
    """


class DeadlineError(ServingError):
    """A request's deadline expired before its answer arrived.

    Raised by the gateway when a shard is too slow (or hung): the
    request is abandoned, the expiry is counted, and any late answer
    from the shard is discarded.
    """


class ShardCrashError(ServingError):
    """The shard process serving a request died with it in flight.

    The gateway fails every in-flight request of the dead shard with
    this error (well before any deadline), then respawns the shard with
    the shared-memory model store remapped.
    """
