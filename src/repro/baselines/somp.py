"""Simultaneous orthogonal matching pursuit (S-OMP) [19].

The paper's state-of-the-art baseline: all states share one greedily-built
template (eq. 33), but each state solves its coefficients by independent
least squares on the shared support — magnitudes are *not* fused, which is
exactly the information C-BMF adds.

Support size is either fixed or chosen by cross-validation, mirroring how
the paper tunes every method's hyper-parameters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import MultiStateRegressor, validate_multistate
from repro.core.greedy import select_shared_support
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer

__all__ = ["SOMP"]


def _least_squares_solver(
    sub_designs: List[np.ndarray], targets: List[np.ndarray]
) -> np.ndarray:
    """Independent LS per state on the shared support."""
    columns = []
    for design, target in zip(sub_designs, targets):
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)
        columns.append(solution)
    return np.column_stack(columns)


class SOMP(MultiStateRegressor):
    """Simultaneous OMP with per-state least-squares magnitudes.

    Parameters
    ----------
    n_select:
        Shared support size, or ``"cv"`` for cross-validated selection
        over ``n_select_grid``.
    n_select_grid:
        Candidate support sizes for CV mode.
    n_folds:
        CV fold count.
    seed:
        Fold-shuffling seed.
    """

    def __init__(
        self,
        n_select: Union[int, str] = "cv",
        n_select_grid: Tuple[int, ...] = (5, 10, 20, 40),
        n_folds: int = 4,
        seed: SeedLike = None,
    ) -> None:
        if isinstance(n_select, str):
            if n_select != "cv":
                raise ValueError(
                    f"n_select must be an int or 'cv', got {n_select!r}"
                )
        else:
            n_select = check_integer(n_select, "n_select", minimum=1)
        self.n_select = n_select
        self.n_select_grid = tuple(n_select_grid)
        self.n_folds = check_integer(n_folds, "n_folds", minimum=2)
        self.seed = seed
        self.coef_: Optional[np.ndarray] = None
        self.support_order_: Optional[List[int]] = None
        self.n_select_used_: Optional[int] = None

    # ------------------------------------------------------------------
    def _cv_support_size(
        self,
        designs: List[np.ndarray],
        targets: List[np.ndarray],
        rng: np.random.Generator,
    ) -> int:
        n_states = len(designs)
        folds_per_state = [
            np.array_split(rng.permutation(d.shape[0]), self.n_folds)
            for d in designs
        ]
        grid = sorted(
            {min(theta, designs[0].shape[1]) for theta in self.n_select_grid}
        )
        errors = {theta: [] for theta in grid}
        for fold in range(self.n_folds):
            train_d, train_t, test_d, test_t = [], [], [], []
            for k in range(n_states):
                test_idx = folds_per_state[k][fold]
                mask = np.ones(designs[k].shape[0], dtype=bool)
                mask[test_idx] = False
                train_d.append(designs[k][mask])
                train_t.append(targets[k][mask])
                test_d.append(designs[k][test_idx])
                test_t.append(targets[k][test_idx])

            theta_max = min(max(grid), min(d.shape[0] for d in train_d))
            records = {}

            def score_step(support: List[int], coefficients: np.ndarray):
                if len(support) in errors:
                    sse = 0.0
                    for k in range(n_states):
                        prediction = (
                            test_d[k][:, support] @ coefficients[:, k]
                        )
                        sse += float(np.sum((prediction - test_t[k]) ** 2))
                    records[len(support)] = sse

            select_shared_support(
                train_d,
                train_t,
                theta_max,
                _least_squares_solver,
                on_step=score_step,
            )
            for theta, sse in records.items():
                errors[theta].append(sse)
        averaged = {
            theta: float(np.mean(values))
            for theta, values in errors.items()
            if values
        }
        if not averaged:
            return min(grid)
        return min(averaged, key=averaged.get)

    def fit(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> "SOMP":
        designs, targets = validate_multistate(designs, targets)
        rng = as_generator(self.seed)
        n_basis_total = designs[0].shape[1]
        if self.n_select == "cv":
            size = self._cv_support_size(designs, targets, rng)
        else:
            size = min(
                int(self.n_select),
                n_basis_total,
                min(d.shape[0] for d in designs),
            )
        support, coefficients = select_shared_support(
            designs, targets, size, _least_squares_solver
        )
        coef = np.zeros((len(designs), n_basis_total))
        for position, basis in enumerate(support):
            coef[:, basis] = coefficients[position]
        self.coef_ = coef
        self.support_order_ = support
        self.n_select_used_ = size
        return self
