"""Uncorrelated Bayesian model fusion — the magnitude-correlation ablation.

Bayesian model fusion [18] places an independent zero-mean Gaussian prior
per coefficient with per-basis variances (its prior knowledge came from
early-stage data; here the variances are learned, as in C-BMF). In the
C-BMF framework this is exactly the special case ``R = I`` held diagonal:
the sparse template is still shared across states through λ, but
coefficient *magnitudes* are fused no further.

Keeping it inside the same machinery makes it the clean ablation the
paper's argument rests on: C-BMF − magnitude correlation = this estimator.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cbmf import CBMF
from repro.core.em import EmConfig
from repro.core.somp_init import InitConfig
from repro.utils.rng import SeedLike

__all__ = ["UncorrelatedBMF"]


class UncorrelatedBMF(CBMF):
    """C-BMF with the cross-state correlation forced to identity.

    Accepts the same configuration as :class:`CBMF`, but overrides the
    correlation handling: the initializer's r0 grid collapses to ``{0}``
    (R = I) and the EM iteration keeps R diagonal.
    """

    def __init__(
        self,
        init_config: Optional[InitConfig] = None,
        em_config: Optional[EmConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        base_init = init_config or InitConfig()
        init = InitConfig(
            r0_grid=(0.0,),
            sigma0_grid=base_init.sigma0_grid,
            n_basis_grid=base_init.n_basis_grid,
            n_folds=base_init.n_folds,
        )
        base_em = em_config or EmConfig()
        em = EmConfig(
            max_iterations=base_em.max_iterations,
            tolerance=base_em.tolerance,
            prune_threshold=base_em.prune_threshold,
            lambda_floor=base_em.lambda_floor,
            r_eigenvalue_floor=base_em.r_eigenvalue_floor,
            update_r=base_em.update_r,
            diagonal_r=True,
            update_noise=base_em.update_noise,
            min_noise_var=base_em.min_noise_var,
        )
        super().__init__(init_config=init, em_config=em, seed=seed)
