"""Group lasso across states [21], solved by FISTA.

The coefficients of basis m across all states form one group ``α_m ∈ R^K``
(the same grouping as C-BMF's prior blocks). The convex program

    min_α  ½ Σ_k ‖y_k − B_k α_k‖²  +  λ · Σ_m ‖α_m‖₂

shares the sparse template across states — like S-OMP — but not the
coefficient magnitudes. Solved with accelerated proximal gradient (FISTA):
the smooth part is block-separable per state and the prox of the group
penalty is the group soft threshold.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import MultiStateRegressor, validate_multistate
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_positive

__all__ = ["GroupLasso"]


def _lipschitz(designs: List[np.ndarray]) -> float:
    """Upper bound on the gradient Lipschitz constant: max_k ‖B_k‖₂²."""
    worst = 0.0
    for design in designs:
        spectral = np.linalg.norm(design, ord=2)
        worst = max(worst, spectral * spectral)
    return max(worst, 1e-12)


def _group_soft_threshold(coef: np.ndarray, threshold: float) -> np.ndarray:
    """Row-wise group soft threshold on a (M, K) coefficient matrix."""
    norms = np.linalg.norm(coef, axis=1, keepdims=True)
    scale = np.maximum(1.0 - threshold / np.maximum(norms, 1e-300), 0.0)
    return coef * scale


def _fista(
    designs: List[np.ndarray],
    targets: List[np.ndarray],
    penalty: float,
    max_iterations: int,
    tolerance: float,
) -> np.ndarray:
    """FISTA on the group-lasso objective; returns (M, K) coefficients."""
    n_states = len(designs)
    n_basis = designs[0].shape[1]
    step = 1.0 / _lipschitz(designs)

    coef = np.zeros((n_basis, n_states))
    momentum = coef.copy()
    t_value = 1.0
    previous_objective = np.inf
    for _ in range(max_iterations):
        gradient = np.empty_like(coef)
        for k, (design, target) in enumerate(zip(designs, targets)):
            residual = design @ momentum[:, k] - target
            gradient[:, k] = design.T @ residual
        candidate = _group_soft_threshold(
            momentum - step * gradient, step * penalty
        )
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_value * t_value))
        momentum = candidate + ((t_value - 1.0) / t_next) * (candidate - coef)
        coef = candidate
        t_value = t_next

        objective = penalty * float(
            np.sum(np.linalg.norm(coef, axis=1))
        )
        for k, (design, target) in enumerate(zip(designs, targets)):
            diff = design @ coef[:, k] - target
            objective += 0.5 * float(diff @ diff)
        if np.isfinite(previous_objective) and abs(
            previous_objective - objective
        ) <= tolerance * max(abs(previous_objective), 1.0):
            break
        previous_objective = objective
    return coef


class GroupLasso(MultiStateRegressor):
    """Cross-state group lasso.

    Parameters
    ----------
    penalty:
        λ of the group penalty, or ``"cv"`` to choose among
        ``penalty_grid`` (expressed as fractions of λ_max, the smallest λ
        that zeroes every group).
    penalty_grid:
        Relative candidate penalties for CV mode.
    n_folds:
        CV fold count.
    max_iterations / tolerance:
        FISTA stopping controls.
    seed:
        Fold-shuffling seed.
    """

    def __init__(
        self,
        penalty: Union[float, str] = "cv",
        penalty_grid: Tuple[float, ...] = (0.3, 0.1, 0.03, 0.01),
        n_folds: int = 4,
        max_iterations: int = 500,
        tolerance: float = 1e-8,
        seed: SeedLike = None,
    ) -> None:
        if isinstance(penalty, str):
            if penalty != "cv":
                raise ValueError(
                    f"penalty must be a float or 'cv', got {penalty!r}"
                )
        else:
            penalty = check_positive(penalty, "penalty")
        self.penalty = penalty
        self.penalty_grid = tuple(penalty_grid)
        self.n_folds = check_integer(n_folds, "n_folds", minimum=2)
        self.max_iterations = check_integer(
            max_iterations, "max_iterations", minimum=1
        )
        self.tolerance = check_positive(tolerance, "tolerance")
        self.seed = seed
        self.coef_: Optional[np.ndarray] = None
        self.penalty_used_: Optional[float] = None

    # ------------------------------------------------------------------
    @staticmethod
    def penalty_max(
        designs: Sequence[np.ndarray], targets: Sequence[np.ndarray]
    ) -> float:
        """Smallest λ that makes the all-zero solution optimal.

        λ_max = max_m ‖(B_1ᵀy_1, ..., B_Kᵀy_K)_m‖₂.
        """
        designs, targets = validate_multistate(designs, targets)
        stacked = np.column_stack(
            [design.T @ target for design, target in zip(designs, targets)]
        )
        return float(np.max(np.linalg.norm(stacked, axis=1)))

    def _cv_penalty(
        self,
        designs: List[np.ndarray],
        targets: List[np.ndarray],
        rng: np.random.Generator,
    ) -> float:
        n_states = len(designs)
        folds_per_state = [
            np.array_split(rng.permutation(d.shape[0]), self.n_folds)
            for d in designs
        ]
        errors = {fraction: [] for fraction in self.penalty_grid}
        for fold in range(self.n_folds):
            train_d, train_t, test_d, test_t = [], [], [], []
            for k in range(n_states):
                test_idx = folds_per_state[k][fold]
                mask = np.ones(designs[k].shape[0], dtype=bool)
                mask[test_idx] = False
                train_d.append(designs[k][mask])
                train_t.append(targets[k][mask])
                test_d.append(designs[k][test_idx])
                test_t.append(targets[k][test_idx])
            lam_max = self.penalty_max(train_d, train_t)
            for fraction in self.penalty_grid:
                coef = _fista(
                    train_d,
                    train_t,
                    fraction * lam_max,
                    self.max_iterations,
                    self.tolerance,
                )
                sse = 0.0
                for k in range(n_states):
                    prediction = test_d[k] @ coef[:, k]
                    sse += float(np.sum((prediction - test_t[k]) ** 2))
                errors[fraction].append(sse)
        averaged = {
            fraction: float(np.mean(values))
            for fraction, values in errors.items()
        }
        best_fraction = min(averaged, key=averaged.get)
        return best_fraction * self.penalty_max(designs, targets)

    def fit(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> "GroupLasso":
        designs, targets = validate_multistate(designs, targets)
        rng = as_generator(self.seed)
        if self.penalty == "cv":
            penalty = self._cv_penalty(designs, targets, rng)
        else:
            penalty = float(self.penalty)
        coef = _fista(
            designs, targets, penalty, self.max_iterations, self.tolerance
        )
        self.coef_ = coef.T
        self.penalty_used_ = penalty
        return self
