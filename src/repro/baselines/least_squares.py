"""Per-state least-squares and ridge fits (the traditional method, eq. 2)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.base import MultiStateRegressor, validate_multistate
from repro.utils.validation import check_positive

__all__ = ["LeastSquares", "Ridge"]


class LeastSquares(MultiStateRegressor):
    """Independent ordinary least squares per state.

    The paper's eq. 2. Needs ``N_k ≥ M`` samples per state to be
    well-posed; below that ``numpy.linalg.lstsq`` returns the minimum-norm
    solution, which badly overfits — exactly the failure mode motivating
    sparse and Bayesian methods at high dimension.
    """

    def __init__(self) -> None:
        self.coef_: Optional[np.ndarray] = None

    def fit(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> "LeastSquares":
        designs, targets = validate_multistate(designs, targets)
        rows = []
        for design, target in zip(designs, targets):
            solution, *_ = np.linalg.lstsq(design, target, rcond=None)
            rows.append(solution)
        self.coef_ = np.vstack(rows)
        return self


class Ridge(MultiStateRegressor):
    """Independent L2-regularized least squares per state.

    Parameters
    ----------
    alpha:
        Ridge strength (> 0). Solves ``(BᵀB + αI)·α_k = Bᵀy_k`` per state.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = check_positive(alpha, "alpha")
        self.coef_: Optional[np.ndarray] = None

    def fit(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> "Ridge":
        designs, targets = validate_multistate(designs, targets)
        rows = []
        for design, target in zip(designs, targets):
            n_basis = design.shape[1]
            gram = design.T @ design + self.alpha * np.eye(n_basis)
            rows.append(np.linalg.solve(gram, design.T @ target))
        self.coef_ = np.vstack(rows)
        return self
