"""Baseline performance-modeling methods the paper compares against.

* ``LeastSquares`` / ``Ridge`` — the traditional per-state fit (eq. 2);
* ``OMP`` — per-state sparse regression [16], no cross-state sharing;
* ``SOMP`` — simultaneous OMP [19]: shared template, independent
  magnitudes; the paper's state-of-the-art comparison point;
* ``GroupLasso`` — convex group-sparse alternative [21];
* ``UncorrelatedBMF`` — Bayesian model fusion in the spirit of [18]:
  C-BMF's machinery with the cross-state correlation forced diagonal, used
  as the magnitude-correlation ablation.
"""

from repro.baselines.bmf import UncorrelatedBMF
from repro.baselines.group_lasso import GroupLasso
from repro.baselines.least_squares import LeastSquares, Ridge
from repro.baselines.omp import OMP
from repro.baselines.somp import SOMP

__all__ = [
    "LeastSquares",
    "Ridge",
    "OMP",
    "SOMP",
    "GroupLasso",
    "UncorrelatedBMF",
]
