"""Per-state orthogonal matching pursuit [16].

Classic sparse regression with *no* cross-state sharing: each state picks
its own support greedily and solves least squares on it. Support size is
either fixed or chosen by per-state cross-validation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import MultiStateRegressor, validate_multistate
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer

__all__ = ["OMP", "omp_select"]


def omp_select(
    design: np.ndarray, target: np.ndarray, n_select: int
) -> Tuple[List[int], np.ndarray]:
    """Single-state OMP: returns (support, coefficients-on-support)."""
    n_basis = design.shape[1]
    if not 0 < n_select <= n_basis:
        raise ValueError(f"n_select must be in 1..{n_basis}, got {n_select}")
    support: List[int] = []
    residual = target.copy()
    coefficients = np.zeros(0)
    for _ in range(n_select):
        score = np.abs(design.T @ residual)
        score[support] = -np.inf
        support.append(int(np.argmax(score)))
        sub = design[:, support]
        coefficients, *_ = np.linalg.lstsq(sub, target, rcond=None)
        residual = target - sub @ coefficients
    return support, coefficients


class OMP(MultiStateRegressor):
    """Independent OMP per state.

    Parameters
    ----------
    n_select:
        Support size per state, or ``"cv"`` to pick it per state by
        cross-validation over ``n_select_grid``.
    n_select_grid:
        Candidate support sizes for CV mode.
    n_folds:
        CV fold count.
    seed:
        Fold-shuffling seed.
    """

    def __init__(
        self,
        n_select: Union[int, str] = "cv",
        n_select_grid: Tuple[int, ...] = (5, 10, 20, 40),
        n_folds: int = 4,
        seed: SeedLike = None,
    ) -> None:
        if isinstance(n_select, str):
            if n_select != "cv":
                raise ValueError(
                    f"n_select must be an int or 'cv', got {n_select!r}"
                )
        else:
            n_select = check_integer(n_select, "n_select", minimum=1)
        self.n_select = n_select
        self.n_select_grid = tuple(n_select_grid)
        self.n_folds = check_integer(n_folds, "n_folds", minimum=2)
        self.seed = seed
        self.coef_: Optional[np.ndarray] = None
        self.supports_: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------
    def _cv_support_size(
        self,
        design: np.ndarray,
        target: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        n_samples = design.shape[0]
        permutation = rng.permutation(n_samples)
        folds = np.array_split(permutation, self.n_folds)
        grid = sorted(
            {
                min(theta, design.shape[1])
                for theta in self.n_select_grid
            }
        )
        errors = {theta: [] for theta in grid}
        for fold in folds:
            mask = np.ones(n_samples, dtype=bool)
            mask[fold] = False
            train_x, train_y = design[mask], target[mask]
            test_x, test_y = design[fold], target[fold]
            theta_max = min(max(grid), train_x.shape[0])
            support: List[int] = []
            residual = train_y.copy()
            for step in range(1, theta_max + 1):
                score = np.abs(train_x.T @ residual)
                score[support] = -np.inf
                support.append(int(np.argmax(score)))
                sub = train_x[:, support]
                coefficients, *_ = np.linalg.lstsq(sub, train_y, rcond=None)
                residual = train_y - sub @ coefficients
                if step in errors:
                    prediction = test_x[:, support] @ coefficients
                    errors[step].append(
                        float(np.sum((prediction - test_y) ** 2))
                    )
        averaged = {
            theta: float(np.mean(values))
            for theta, values in errors.items()
            if values
        }
        if not averaged:
            return min(grid)
        return min(averaged, key=averaged.get)

    def fit(
        self,
        designs: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
    ) -> "OMP":
        designs, targets = validate_multistate(designs, targets)
        rng = as_generator(self.seed)
        n_basis_total = designs[0].shape[1]
        rows = []
        supports: List[List[int]] = []
        for design, target in zip(designs, targets):
            if self.n_select == "cv":
                size = self._cv_support_size(design, target, rng)
            else:
                size = min(int(self.n_select), n_basis_total, design.shape[0])
            support, coefficients = omp_select(design, target, size)
            dense = np.zeros(n_basis_total)
            dense[support] = coefficients
            rows.append(dense)
            supports.append(support)
        self.coef_ = np.vstack(rows)
        self.supports_ = supports
        return self
