"""Abstract basis dictionary: named functions x ↦ b_m(x)."""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["BasisDictionary"]


class BasisDictionary(abc.ABC):
    """A fixed, ordered set of basis functions shared by all states.

    Subclasses implement :meth:`_expand` on a validated 2-D input; the
    public :meth:`expand` adds shape checking and guarantees the output is
    ``n_samples × n_basis``.
    """

    def __init__(self, n_variables: int) -> None:
        if n_variables < 1:
            raise ValueError(f"n_variables must be >= 1, got {n_variables}")
        self.n_variables = n_variables

    @property
    @abc.abstractmethod
    def names(self) -> Tuple[str, ...]:
        """Basis-function names, in column order."""

    @abc.abstractmethod
    def _expand(self, x: np.ndarray) -> np.ndarray:
        """Expand a validated (n_samples × n_variables) matrix."""

    @property
    def n_basis(self) -> int:
        """Number of basis functions M."""
        return len(self.names)

    def expand(self, x: np.ndarray) -> np.ndarray:
        """Design matrix ``B`` with ``B[n, m] = b_m(x^(n))`` (paper eq. 3)."""
        x = check_matrix(x, "x", shape=(None, self.n_variables))
        design = self._expand(x)
        if design.shape != (x.shape[0], self.n_basis):
            raise AssertionError(
                f"basis expansion produced shape {design.shape}, expected "
                f"{(x.shape[0], self.n_basis)}"
            )
        return design

    def expand_states(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Expand the per-state input list into design matrices ``B_k``."""
        return [self.expand(x) for x in inputs]

    def spec(self) -> dict:
        """JSON-serializable reconstruction recipe for this dictionary.

        The serving registry persists this alongside frozen coefficients
        so a saved model can be reloaded without the caller re-supplying
        the basis (``repro.basis.basis_from_spec`` inverts it). Subclasses
        with constructor arguments beyond ``n_variables`` must override.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement spec(); it cannot "
            "be persisted in a registry manifest"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_variables={self.n_variables}, "
            f"n_basis={self.n_basis})"
        )
