"""Polynomial basis dictionaries (linear, quadratic, selected cross terms)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.basis.dictionary import BasisDictionary

__all__ = ["LinearBasis", "QuadraticBasis", "CrossTermBasis"]


class LinearBasis(BasisDictionary):
    """Constant plus first-order terms: ``{1, x_1, ..., x_n}``.

    This is the dictionary the paper uses for both circuit examples
    ("model three performance metrics ... as linear functions of all
    random variables").
    """

    def __init__(self, n_variables: int) -> None:
        super().__init__(n_variables)
        self._names = ("1",) + tuple(
            f"x{i}" for i in range(1, n_variables + 1)
        )

    @property
    def names(self) -> Tuple[str, ...]:
        """Basis-function names, in column order."""
        return self._names

    def spec(self) -> dict:
        """JSON-serializable reconstruction recipe."""
        return {"type": "linear", "n_variables": self.n_variables}

    def _expand(self, x: np.ndarray) -> np.ndarray:
        return np.hstack([np.ones((x.shape[0], 1)), x])


class QuadraticBasis(BasisDictionary):
    """Constant, linear and pure-square terms: ``{1, x_i, x_i²}``.

    The squares are centered (``x² − 1``) so every non-constant basis
    function has zero mean under the standard-normal sampling distribution,
    keeping the dictionary well-conditioned.
    """

    def __init__(self, n_variables: int) -> None:
        super().__init__(n_variables)
        self._names = (
            ("1",)
            + tuple(f"x{i}" for i in range(1, n_variables + 1))
            + tuple(f"x{i}^2-1" for i in range(1, n_variables + 1))
        )

    @property
    def names(self) -> Tuple[str, ...]:
        """Basis-function names, in column order."""
        return self._names

    def spec(self) -> dict:
        """JSON-serializable reconstruction recipe."""
        return {"type": "quadratic", "n_variables": self.n_variables}

    def _expand(self, x: np.ndarray) -> np.ndarray:
        return np.hstack(
            [np.ones((x.shape[0], 1)), x, x * x - 1.0]
        )


class CrossTermBasis(BasisDictionary):
    """Linear basis plus selected pairwise products ``x_i·x_j``.

    A full cross-term dictionary over >1000 variables would have ~10⁶
    columns; in practice one screens a candidate pair list (e.g. the
    devices known to interact). ``pairs`` takes 0-based variable index
    pairs.
    """

    def __init__(
        self,
        n_variables: int,
        pairs: Sequence[Tuple[int, int]],
        include_squares: bool = False,
    ) -> None:
        super().__init__(n_variables)
        validated = []
        for i, j in pairs:
            if not (0 <= i < n_variables and 0 <= j < n_variables):
                raise ValueError(
                    f"pair ({i}, {j}) out of range for {n_variables} variables"
                )
            if i == j:
                raise ValueError(
                    f"pair ({i}, {j}) is a square; use include_squares"
                )
            validated.append((min(i, j), max(i, j)))
        if len(set(validated)) != len(validated):
            raise ValueError("duplicate cross-term pairs")
        self._pairs: Tuple[Tuple[int, int], ...] = tuple(validated)
        self._include_squares = include_squares

        names = ["1"] + [f"x{i}" for i in range(1, n_variables + 1)]
        if include_squares:
            names += [f"x{i}^2-1" for i in range(1, n_variables + 1)]
        names += [f"x{i + 1}*x{j + 1}" for i, j in self._pairs]
        self._names = tuple(names)

    @property
    def names(self) -> Tuple[str, ...]:
        """Basis-function names, in column order."""
        return self._names

    @property
    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The cross-term index pairs (0-based, sorted)."""
        return self._pairs

    def spec(self) -> dict:
        """JSON-serializable reconstruction recipe."""
        return {
            "type": "cross_term",
            "n_variables": self.n_variables,
            "pairs": [list(pair) for pair in self._pairs],
            "include_squares": self._include_squares,
        }

    def _expand(self, x: np.ndarray) -> np.ndarray:
        blocks = [np.ones((x.shape[0], 1)), x]
        if self._include_squares:
            blocks.append(x * x - 1.0)
        if self._pairs:
            rows = np.column_stack(
                [x[:, i] * x[:, j] for i, j in self._pairs]
            )
            blocks.append(rows)
        return np.hstack(blocks)
