"""Basis-function dictionaries for performance models.

The paper approximates each performance as a linear combination of basis
functions of the normalized process variables (eq. 1); its examples use
linear bases (constant + first-order terms). Quadratic and selected
cross-term dictionaries are provided for the nonlinear-metric examples.

Every dictionary serializes to a JSON spec (``BasisDictionary.spec``)
that :func:`basis_from_spec` inverts, so the serving registry can store
a model together with the recipe to rebuild its basis.
"""

from repro.basis.dictionary import BasisDictionary
from repro.basis.orthogonal import HermiteBasis
from repro.basis.polynomial import (
    CrossTermBasis,
    LinearBasis,
    QuadraticBasis,
)

__all__ = [
    "BasisDictionary",
    "HermiteBasis",
    "LinearBasis",
    "QuadraticBasis",
    "CrossTermBasis",
    "basis_from_spec",
]


def basis_from_spec(spec: dict) -> BasisDictionary:
    """Rebuild a basis dictionary from a ``BasisDictionary.spec`` dict."""
    if not isinstance(spec, dict) or "type" not in spec:
        raise ValueError(f"not a basis spec: {spec!r}")
    kind = spec["type"]
    n_variables = int(spec["n_variables"])
    if kind == "linear":
        return LinearBasis(n_variables)
    if kind == "quadratic":
        return QuadraticBasis(n_variables)
    if kind == "cross_term":
        return CrossTermBasis(
            n_variables,
            pairs=[tuple(pair) for pair in spec["pairs"]],
            include_squares=bool(spec.get("include_squares", False)),
        )
    if kind == "hermite":
        return HermiteBasis(n_variables, degree=int(spec.get("degree", 2)))
    raise ValueError(f"unknown basis spec type: {kind!r}")
