"""Basis-function dictionaries for performance models.

The paper approximates each performance as a linear combination of basis
functions of the normalized process variables (eq. 1); its examples use
linear bases (constant + first-order terms). Quadratic and selected
cross-term dictionaries are provided for the nonlinear-metric examples.
"""

from repro.basis.dictionary import BasisDictionary
from repro.basis.orthogonal import HermiteBasis
from repro.basis.polynomial import (
    CrossTermBasis,
    LinearBasis,
    QuadraticBasis,
)

__all__ = [
    "BasisDictionary",
    "HermiteBasis",
    "LinearBasis",
    "QuadraticBasis",
    "CrossTermBasis",
]
