"""Orthonormal Hermite basis (probabilists', normalized).

The performance-modeling literature this paper builds on (e.g. Li,
TCAD 2010) expands in Hermite polynomials because the process variables
are standard normal: the probabilists' Hermite family He_d is orthogonal
under N(0,1), and dividing by √(d!) makes it orthonormal,

    E[ĥ_i(x) ĥ_j(x)] = δ_ij,    ĥ_d = He_d / √(d!)

so design-matrix columns are uncorrelated in expectation — better
conditioning than raw monomials at the same model capacity. Degrees
implemented in closed form:

    ĥ0 = 1
    ĥ1 = x
    ĥ2 = (x² − 1)/√2
    ĥ3 = (x³ − 3x)/√6
    ĥ4 = (x⁴ − 6x² + 3)/√24

``HermiteBasis(n, degree)`` provides the per-variable expansion
{1} ∪ {ĥ_d(x_i)}; degree 2 spans the same space as ``QuadraticBasis``
but with orthonormal columns.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.basis.dictionary import BasisDictionary

__all__ = ["HermiteBasis", "hermite_normalized"]

_MAX_DEGREE = 4


def hermite_normalized(values: np.ndarray, degree: int) -> np.ndarray:
    """Normalized probabilists' Hermite ĥ_degree evaluated elementwise."""
    if not 0 <= degree <= _MAX_DEGREE:
        raise ValueError(
            f"degree must be in 0..{_MAX_DEGREE}, got {degree}"
        )
    x = np.asarray(values, dtype=float)
    if degree == 0:
        return np.ones_like(x)
    if degree == 1:
        return x
    if degree == 2:
        return (x * x - 1.0) / math.sqrt(2.0)
    if degree == 3:
        return (x**3 - 3.0 * x) / math.sqrt(6.0)
    return (x**4 - 6.0 * x * x + 3.0) / math.sqrt(24.0)


class HermiteBasis(BasisDictionary):
    """Constant plus per-variable normalized Hermite terms up to ``degree``.

    Column order: the constant, then all degree-1 terms, then all
    degree-2 terms, and so on — so truncating columns truncates model
    order, and the degree-1 block coincides with ``LinearBasis``.
    """

    def __init__(self, n_variables: int, degree: int = 2) -> None:
        super().__init__(n_variables)
        if not 1 <= degree <= _MAX_DEGREE:
            raise ValueError(
                f"degree must be in 1..{_MAX_DEGREE}, got {degree}"
            )
        self.degree = degree
        names = ["1"]
        for d in range(1, degree + 1):
            names.extend(
                f"He{d}(x{i})" for i in range(1, n_variables + 1)
            )
        self._names = tuple(names)

    @property
    def names(self) -> Tuple[str, ...]:
        """Basis-function names, in column order."""
        return self._names

    def spec(self) -> dict:
        """JSON-serializable reconstruction recipe."""
        return {
            "type": "hermite",
            "n_variables": self.n_variables,
            "degree": self.degree,
        }

    def _expand(self, x: np.ndarray) -> np.ndarray:
        blocks = [np.ones((x.shape[0], 1))]
        for d in range(1, self.degree + 1):
            blocks.append(hermite_normalized(x, d))
        return np.hstack(blocks)
