"""PerformanceModelSet: every metric of a circuit behind one handle.

The estimators model one metric at a time (as in the paper); real flows
need all of them — NF *and* gain *and* IIP3 — plus the basis bookkeeping.
``PerformanceModelSet`` fits one estimator per metric from a dataset,
predicts dictionaries of metrics, freezes/saves the whole set, and plugs
directly into the yield/tuning applications.

    models = PerformanceModelSet.fit_dataset(train, method="cbmf", seed=0)
    models.predict(x, state=3)           # {"nf_db": ..., "gain_db": ...}
    models.save_dir("models/")           # one npz per metric
    YieldEstimator(models.as_mapping(), models.basis)
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.basis.dictionary import BasisDictionary
from repro.basis.polynomial import LinearBasis
from repro.core.base import MultiStateRegressor
from repro.core.frozen import FrozenModel
from repro.evaluation.methods import make_estimator
from repro.simulate.dataset import Dataset
from repro.utils.rng import SeedLike
from repro.utils.validation import check_matrix

__all__ = ["PerformanceModelSet"]


class PerformanceModelSet:
    """A fitted estimator per metric, sharing one basis dictionary."""

    def __init__(
        self,
        models: Mapping[str, MultiStateRegressor],
        basis: BasisDictionary,
    ) -> None:
        if not models:
            raise ValueError("at least one metric model is required")
        states = {model.n_states for model in models.values()}
        if len(states) != 1:
            raise ValueError(
                f"models disagree on the state count: {sorted(states)}"
            )
        for metric, model in models.items():
            if model.n_basis != basis.n_basis:
                raise ValueError(
                    f"model {metric!r} has {model.n_basis} coefficients "
                    f"but the basis has {basis.n_basis} functions"
                )
        self._models: Dict[str, MultiStateRegressor] = dict(models)
        self.basis = basis
        self.n_states = states.pop()

    # ------------------------------------------------------------------
    @classmethod
    def fit_dataset(
        cls,
        train: Dataset,
        method: str = "cbmf",
        basis: Optional[BasisDictionary] = None,
        metrics: Optional[Sequence[str]] = None,
        seed: SeedLike = None,
    ) -> "PerformanceModelSet":
        """Fit one registry estimator per metric of a training dataset."""
        basis = basis or LinearBasis(train.n_variables)
        metric_names = tuple(metrics) if metrics else train.metric_names
        designs = basis.expand_states(train.inputs())
        models: Dict[str, MultiStateRegressor] = {}
        for metric in metric_names:
            estimator = make_estimator(method, seed)
            estimator.fit(designs, train.targets(metric))
            models[metric] = estimator
        return cls(models, basis)

    # ------------------------------------------------------------------
    @property
    def metric_names(self):
        """Fitted metrics, sorted."""
        return tuple(sorted(self._models))

    def model(self, metric: str) -> MultiStateRegressor:
        """The estimator of one metric."""
        if metric not in self._models:
            raise KeyError(
                f"no model for {metric!r}; have {self.metric_names}"
            )
        return self._models[metric]

    def as_mapping(self) -> Dict[str, MultiStateRegressor]:
        """Plain dict view (for YieldEstimator / TuningPolicy)."""
        return dict(self._models)

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray, state: int) -> Dict[str, np.ndarray]:
        """All metrics for raw samples ``x`` (n × n_variables) at a state."""
        x = check_matrix(x, "x", shape=(None, self.basis.n_variables))
        design = self.basis.expand(x)
        return {
            metric: model.predict(design, state)
            for metric, model in self._models.items()
        }

    def predict_point(self, x: np.ndarray, state: int) -> Dict[str, float]:
        """All metrics for a single sample vector."""
        x = np.asarray(x, dtype=float)
        results = self.predict(x[None, :], state)
        return {metric: float(v[0]) for metric, v in results.items()}

    # ------------------------------------------------------------------
    def freeze(self) -> Dict[str, FrozenModel]:
        """Frozen (coefficient-only) snapshot of every metric model."""
        return {
            metric: FrozenModel.from_estimator(
                model, metric=metric, basis_names=self.basis.names
            )
            for metric, model in self._models.items()
        }

    def save_dir(self, directory) -> None:
        """Save one ``<metric>.npz`` per metric into ``directory``.

        Routed through the serving registry's serialization: alongside
        the npz files a ``manifest.json`` records the metric list, the
        basis reconstruction spec and per-file sha256 checksums, so the
        directory doubles as a registry artifact and reloads without
        the caller re-supplying the basis.
        """
        from repro.serving.registry import write_model_dir

        write_model_dir(directory, self.freeze(), basis=self.basis)

    @classmethod
    def load_dir(
        cls, directory, basis: Optional[BasisDictionary] = None
    ) -> "PerformanceModelSet":
        """Load the frozen metric models saved under ``directory``.

        With a ``manifest.json`` present (written by :meth:`save_dir` or
        a registry push), checksums are verified and the basis is
        rebuilt from its stored spec — ``basis`` then only overrides it.
        Directories of loose ``*.npz`` files (the pre-registry layout)
        still load, but require an explicit ``basis``.
        """
        from repro.serving.registry import read_model_dir

        directory = Path(directory)
        models, manifest_basis, _ = read_model_dir(directory)
        if not models:
            raise FileNotFoundError(f"no .npz models under {directory}")
        basis = basis if basis is not None else manifest_basis
        if basis is None:
            raise ValueError(
                f"{directory} has no manifest with a basis spec; pass "
                "the basis explicitly"
            )
        return cls(models, basis)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PerformanceModelSet(metrics={list(self.metric_names)}, "
            f"K={self.n_states})"
        )
